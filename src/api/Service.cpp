//===- api/Service.cpp ----------------------------------------------------===//

#include "api/Service.h"

#include "api/Execute.h"

#include <future>
#include <memory>
#include <utility>

using namespace offchip;

SimService::SimService(ServiceOptions Opts, Executor Exec)
    : Opts(Opts), Exec(Exec ? std::move(Exec)
                            : [](const SimRequest &R) {
                                return executeRequest(R, /*Jobs=*/1);
                              }),
      Cache(Opts.CacheCapacity), Pool(Opts.Workers) {}

SimService::~SimService() { drain(); }

void SimService::submit(SimRequest R, DoneFn Done) {
  bool Reject = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Pending >= Opts.QueueDepth) {
      ++Rejected;
      Reject = true;
    } else {
      ++Pending;
      ++Admitted;
    }
  }
  if (Reject) {
    // Answer on the caller's thread — admission control must stay cheap
    // and never wait for a worker — but outside Mu: the callback may take
    // locks of its own, and holding Mu across it would order them against
    // every other service operation.
    SimResponse Resp;
    Resp.Id = R.Id;
    Resp.Status = ResponseStatus::Overloaded;
    Done(std::move(Resp));
    return;
  }
  auto Shared = std::make_shared<std::pair<SimRequest, DoneFn>>(
      std::move(R), std::move(Done));
  Pool.submit([this, Shared]() {
    process(Shared->first, Shared->second);
    std::lock_guard<std::mutex> Lock(Mu);
    --Pending;
    ++Completed;
    if (Pending == 0)
      Idle.notify_all();
  });
}

void SimService::process(const SimRequest &R, const DoneFn &Done) {
  CacheKey Key = requestKey(R);
  std::string KeyStr = Key.str();
  // Tracing requests must actually run (the trace files are the point), so
  // they bypass the cache lookup and single-flight merging; their computed
  // result still refreshes the cache for everyone else.
  if (R.TracePrefix.empty()) {
    // One atomic decision under Mu: attach to an in-flight leader, answer
    // from the cache, or become the leader for this key. The nesting
    // Mu -> ResultCache's internal lock is one-directional (the cache
    // never calls back into the service), and no callback ever runs under
    // Mu.
    {
      std::unique_lock<std::mutex> Lock(Mu);
      auto It = InFlight.find(KeyStr);
      if (It != InFlight.end()) {
        It->second.push_back({R.Id, Done});
        ++SingleflightHits;
        // The leader invokes this waiter's Done when it finishes; this
        // worker slot frees up, but the leader's Pending keeps drain()
        // waiting until every attached callback has fired.
        return;
      }
      if (std::optional<SimResponse> Hit = Cache.lookup(Key)) {
        Lock.unlock();
        Hit->Id = R.Id;
        Hit->CacheHit = true;
        Hit->Key = KeyStr;
        Done(std::move(*Hit));
        return;
      }
      InFlight.emplace(KeyStr, std::vector<Waiter>());
    }
    SimResponse Resp = Exec(R);
    std::vector<Waiter> Waiters;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Resp.ok()) {
        // Store a client-neutral copy; lookup() re-stamps per-request
        // fields. Insert before retiring the key so no request can miss
        // both the registry and the cache.
        SimResponse Entry = Resp;
        Entry.Id.clear();
        Entry.CacheHit = false;
        Entry.Key.clear();
        Cache.insert(Key, Entry);
      }
      auto It = InFlight.find(KeyStr);
      Waiters = std::move(It->second);
      InFlight.erase(It);
    }
    Resp.CacheHit = false;
    Resp.Key = KeyStr;
    for (Waiter &W : Waiters) {
      SimResponse Copy = Resp;
      Copy.Id = W.Id;
      Copy.Singleflight = true;
      W.Done(std::move(Copy));
    }
    Done(std::move(Resp));
    return;
  }
  SimResponse Resp = Exec(R);
  if (Resp.ok()) {
    SimResponse Entry = Resp;
    Entry.Id.clear();
    Entry.CacheHit = false;
    Entry.Key.clear();
    Cache.insert(Key, Entry);
  }
  Resp.CacheHit = false;
  Resp.Key = KeyStr;
  Done(std::move(Resp));
}

SimResponse SimService::call(SimRequest R) {
  std::promise<SimResponse> Promise;
  std::future<SimResponse> Future = Promise.get_future();
  submit(std::move(R),
         [&Promise](SimResponse Resp) { Promise.set_value(std::move(Resp)); });
  return Future.get();
}

void SimService::drain() {
  std::unique_lock<std::mutex> Lock(Mu);
  Idle.wait(Lock, [this] { return Pending == 0; });
}

SimService::Stats SimService::stats() const {
  Stats S;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    S.Admitted = Admitted;
    S.Rejected = Rejected;
    S.Completed = Completed;
    S.SingleflightHits = SingleflightHits;
  }
  S.Cache = Cache.stats();
  return S;
}
