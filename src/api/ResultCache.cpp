//===- api/ResultCache.cpp ------------------------------------------------===//

#include "api/ResultCache.h"

using namespace offchip;

std::optional<SimResponse> ResultCache::lookup(const CacheKey &K) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(K);
  if (It == Index.end()) {
    ++Misses;
    return std::nullopt;
  }
  ++Hits;
  Order.splice(Order.begin(), Order, It->second);
  return It->second->second;
}

void ResultCache::insert(const CacheKey &K, const SimResponse &Resp) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(K);
  if (It != Index.end()) {
    It->second->second = Resp;
    Order.splice(Order.begin(), Order, It->second);
    return;
  }
  if (Order.size() >= Capacity) {
    Index.erase(Order.back().first);
    Order.pop_back();
    ++Evictions;
  }
  Order.emplace_front(K, Resp);
  Index.emplace(K, Order.begin());
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Stats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.Entries = Order.size();
  S.Capacity = Capacity;
  return S;
}
