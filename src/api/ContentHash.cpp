//===- api/ContentHash.cpp ------------------------------------------------===//

#include "api/ContentHash.h"

#include "support/Format.h"

#include <cstring>

using namespace offchip;

namespace {

/// Two FNV-1a-64 streams over the same bytes, seeded differently. Every
/// value is appended behind a one-byte field tag plus (for strings) an
/// explicit length, so the encoding is prefix-free per field and reordering
/// or merging fields can never produce the same byte stream.
class HashStream {
public:
  void bytes(const void *Data, std::size_t Len) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (std::size_t I = 0; I < Len; ++I) {
      A = (A ^ P[I]) * Prime;
      B = (B ^ P[I]) * Prime;
    }
  }

  void u64(unsigned char Tag, std::uint64_t V) {
    bytes(&Tag, 1);
    unsigned char Buf[8];
    for (int I = 0; I < 8; ++I)
      Buf[I] = static_cast<unsigned char>(V >> (8 * I));
    bytes(Buf, 8);
  }

  void f64(unsigned char Tag, double V) {
    std::uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V));
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Tag, Bits);
  }

  void str(unsigned char Tag, const std::string &S) {
    u64(Tag, S.size());
    bytes(S.data(), S.size());
  }

  CacheKey key() const { return {A, B}; }

private:
  static constexpr std::uint64_t Prime = 0x100000001B3ull;
  std::uint64_t A = 0xCBF29CE484222325ull; // FNV offset basis
  std::uint64_t B = 0x6C62272E07BB0142ull; // FNV-128 basis low word
};

} // namespace

std::string CacheKey::str() const {
  return formatString("%016llx%016llx", static_cast<unsigned long long>(Hi),
                      static_cast<unsigned long long>(Lo));
}

CacheKey offchip::requestKey(const SimRequest &R) {
  HashStream H;

  // Request shape.
  H.u64(0x01, static_cast<std::uint64_t>(R.Kind));
  H.u64(0x02, R.MCsPerCluster);

  // Workload.
  if (R.Workload.isApp()) {
    H.str(0x10, R.Workload.App);
    H.f64(0x11, R.Workload.SizeScale);
  } else {
    H.str(0x12, R.Workload.ProgramText);
  }

  // Machine config — every result-affecting field, in declaration order.
  // SimThreads, SimWindowBatch, SimReplicaEpochs, Trace, CheckInvariants
  // and CollectPhaseTimes are excluded on purpose: they never change a
  // simulated result (see MachineConfig's field comments), so requests
  // differing only in them share a cache key.
  const MachineConfig &C = R.Config;
  H.u64(0x20, C.MeshX);
  H.u64(0x21, C.MeshY);
  H.u64(0x22, C.L1SizeBytes);
  H.u64(0x23, C.L1LineBytes);
  H.u64(0x24, C.L1Ways);
  H.u64(0x25, C.L1LatencyCycles);
  H.u64(0x26, C.L2SizeBytes);
  H.u64(0x27, C.L2LineBytes);
  H.u64(0x28, C.L2Ways);
  H.u64(0x29, C.L2LatencyCycles);
  H.u64(0x2A, C.SharedL2 ? 1 : 0);
  H.u64(0x2B, C.Noc.PerHopCycles);
  H.u64(0x2C, C.Noc.LinkBytes);
  H.u64(0x2D, C.NumMCs);
  H.u64(0x2E, static_cast<std::uint64_t>(C.Placement));
  H.u64(0x2F, C.Dram.Banks);
  H.u64(0x30, C.Dram.RowBufferBytes);
  H.u64(0x31, C.Dram.FrFcfsWindowRows);
  H.u64(0x32, C.Dram.Timing.RowHitCycles);
  H.u64(0x33, C.Dram.Timing.RowMissCycles);
  H.u64(0x34, C.BytesPerMC);
  H.u64(0x35, static_cast<std::uint64_t>(C.Granularity));
  H.u64(0x36, C.PageBytes);
  H.u64(0x37, static_cast<std::uint64_t>(C.PagePolicy));
  H.u64(0x38, C.ThreadsPerCore);
  H.u64(0x39, C.ComputeGapCycles);
  H.u64(0x3A, C.TransformOverheadCycles);
  H.u64(0x3B, C.DirectoryLatencyCycles);
  H.u64(0x3C, C.RequestBytes);
  H.u64(0x3D, C.OptimalScheme ? 1 : 0);
  H.u64(0x3E, C.Burst.Enabled ? 1 : 0);
  H.u64(0x3F, C.Burst.WindowAccesses);
  H.u64(0x40, C.Burst.MaxLines);
  H.u64(0x41, C.Dram.Timing.BurstBeatCycles);
  H.u64(0x42, static_cast<std::uint64_t>(C.Coherence.Protocol));
  H.u64(0x43, C.Coherence.SparseDirectory ? 1 : 0);
  H.u64(0x44, C.Coherence.SparseEntries);
  H.u64(0x45, C.Coherence.AckBytes);
  H.u64(0x46, C.Coherence.InvalidateBytes);
  // Explicit placement node list: length-prefixed so {1},{2} and {1,2} can
  // never collide. Hashed unconditionally (an empty list hashes as length
  // 0) — adding these tags bumped the pinned protocol hash in api_test.cpp
  // exactly once, instead of changing it again the first time a list is
  // actually set.
  H.u64(0x47, C.MCNodes.size());
  for (unsigned N : C.MCNodes)
    H.u64(0x48, N);

  return H.key();
}
