//===- api/ResultCache.h - Content-addressed LRU result cache ---*- C++ -*-===//
///
/// \file
/// Caches Ok responses under their canonical request key
/// (api/ContentHash.h). Because the key covers exactly the
/// result-affecting request content, replaying a cached response is
/// indistinguishable from recomputing it — the simulator is deterministic
/// and the parallel engine bit-identical — so the cache can sit in front
/// of the service without a correctness tax. Bounded LRU with hit/miss/
/// eviction counters; all operations are thread-safe behind one mutex
/// (entries are value copies, never references into the cache).
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_API_RESULTCACHE_H
#define OFFCHIP_API_RESULTCACHE_H

#include "api/ContentHash.h"
#include "api/Request.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace offchip {

class ResultCache {
public:
  /// \p Capacity is the maximum entry count; 0 disables the cache (every
  /// lookup misses, inserts are dropped).
  explicit ResultCache(std::size_t Capacity) : Capacity(Capacity) {}

  ResultCache(const ResultCache &) = delete;
  ResultCache &operator=(const ResultCache &) = delete;

  /// Returns a copy of the entry under \p K and marks it most recently
  /// used, or std::nullopt on a miss. The copy's Id/CacheHit/Key fields are
  /// whatever insert() stored — callers re-stamp per-request fields.
  std::optional<SimResponse> lookup(const CacheKey &K);

  /// Stores \p Resp under \p K (replacing any existing entry), evicting the
  /// least recently used entry when full.
  void insert(const CacheKey &K, const SimResponse &Resp);

  struct Stats {
    std::uint64_t Hits = 0;
    std::uint64_t Misses = 0;
    std::uint64_t Evictions = 0;
    std::size_t Entries = 0;
    std::size_t Capacity = 0;
  };
  Stats stats() const;

private:
  using EntryList = std::list<std::pair<CacheKey, SimResponse>>;

  const std::size_t Capacity;
  mutable std::mutex Mu;
  EntryList Order; // front = most recently used
  std::unordered_map<CacheKey, EntryList::iterator, CacheKeyHash> Index;
  std::uint64_t Hits = 0, Misses = 0, Evictions = 0;
};

} // namespace offchip

#endif // OFFCHIP_API_RESULTCACHE_H
