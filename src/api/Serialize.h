//===- api/Serialize.h - JSON wire format of the service API ----*- C++ -*-===//
///
/// \file
/// JSON encoding of the request/response vocabulary — the offchip-serve
/// line protocol. One request or response per line, a JSON object each:
///
///   {"id":"r1","method":"simulate","app":"swim","scale":0.5,
///    "config":{"mesh_x":8,"num_mcs":4,...},"mcs_per_cluster":1}
///   {"id":"r2","method":"optimize","program":"program p\n..."}
///
///   {"id":"r1","status":"ok","cache":"miss","key":"<32 hex>",
///    "server_seconds":1.25,"plan":{...},"original":{...},"optimized":{...}}
///   {"id":"r1","status":"error","error":"...","diagnostics":[...]}
///   {"id":"r1","status":"overloaded"}
///
/// Config objects are partial: absent fields keep MachineConfig
/// scaledDefault() values, unknown keys are rejected (the same philosophy
/// as the CLI's strict option parsing — a typo must not silently simulate
/// a different machine). SimResult serialization covers every field
/// equalResults() compares, with exact integer and %.17g double tokens, so
/// a result survives the wire bit-identically.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_API_SERIALIZE_H
#define OFFCHIP_API_SERIALIZE_H

#include "api/Json.h"
#include "api/Request.h"

namespace offchip {

//===----------------------------------------------------------------------===//
// Machine config
//===----------------------------------------------------------------------===//

/// Full encoding (every supported key, current values).
JsonValue toJson(const MachineConfig &C);

/// Applies a (partial) config object onto \p C. Unknown keys, wrong types
/// and unknown enum spellings fail with a message naming the key.
bool machineConfigFromJson(const JsonValue &V, MachineConfig *C,
                           std::string *Err);

//===----------------------------------------------------------------------===//
// Results
//===----------------------------------------------------------------------===//

JsonValue toJson(const SimResult &R);
bool simResultFromJson(const JsonValue &V, SimResult *R, std::string *Err);

JsonValue toJson(const PlanSummary &P);
bool planSummaryFromJson(const JsonValue &V, PlanSummary *P,
                         std::string *Err);

//===----------------------------------------------------------------------===//
// Requests and responses
//===----------------------------------------------------------------------===//

JsonValue toJson(const SimRequest &R);
bool requestFromJson(const JsonValue &V, SimRequest *R, std::string *Err);

JsonValue toJson(const SimResponse &R);
bool responseFromJson(const JsonValue &V, SimResponse *R, std::string *Err);

/// Convenience: one '\n'-terminated protocol line.
std::string writeRequestLine(const SimRequest &R);
std::string writeResponseLine(const SimResponse &R);

} // namespace offchip

#endif // OFFCHIP_API_SERIALIZE_H
