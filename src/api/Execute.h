//===- api/Execute.h - One request, one validated answer --------*- C++ -*-===//
///
/// \file
/// The single execution path behind every client: validate the machine,
/// resolve the workload (registry app or inline program text), run the
/// layout pass, and — for simulate requests — run the original and
/// optimized variants. The offchip-opt CLI renders its output from the
/// response this produces; the daemon serializes the same response onto
/// the wire. A response computed here is the correctness oracle the
/// service's cached/served answers are compared against bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_API_EXECUTE_H
#define OFFCHIP_API_EXECUTE_H

#include "api/Request.h"

namespace offchip {

/// Executes \p R synchronously in-process.
///
/// Error taxonomy: an invalid machine config yields Status == Error with
/// MachineConfig::validate() diagnostics; an unknown app name or a program
/// parse failure yields Status == Error with ErrorText. Ok responses carry
/// the plan (and for Simulate requests both variant results) plus the
/// compute wall time in ServerSeconds. CacheHit/Key are left for the
/// service layer — a direct call never consults a cache.
///
/// \p Jobs is ExperimentRunner parallelism for the two-variant simulate
/// fan-out (1 = inline serial execution, 0 = all cores).
SimResponse executeRequest(const SimRequest &R, unsigned Jobs = 1);

} // namespace offchip

#endif // OFFCHIP_API_EXECUTE_H
