//===- api/Json.h - Minimal JSON value, parser and writer -------*- C++ -*-===//
///
/// \file
/// The JSON layer of the service wire protocol (api/Serialize.h) and of the
/// machine-readable reports. Deliberately dependency-free and exact:
///
///   - Numbers are stored as their source token and formatted on demand, so
///     64-bit counters (simulated cycle counts exceed 2^53) and IEEE
///     doubles (written as %.17g) survive a write/parse roundtrip
///     bit-exactly — the property the served-vs-direct bit-identity tests
///     rest on.
///   - Object members keep insertion order, so serialization is
///     deterministic and responses are byte-stable run to run.
///
/// Strings are UTF-8 passthrough; escapes cover the JSON set including
/// \uXXXX (decoded to UTF-8, surrogate pairs supported).
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_API_JSON_H
#define OFFCHIP_API_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace offchip {

class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool V);
  static JsonValue number(double V);
  static JsonValue number(std::uint64_t V);
  static JsonValue number(unsigned V) {
    return number(static_cast<std::uint64_t>(V));
  }
  /// A number from its source token (parser internal; also handy in tests).
  static JsonValue rawNumber(std::string Token);
  static JsonValue string(std::string V);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Typed accessors; calling one on a mismatched kind aborts (callers
  /// check kind() first — the deserializers do so with typed diagnostics).
  bool asBool() const;
  double asDouble() const;
  std::uint64_t asU64() const;
  const std::string &asString() const;
  /// The number's source token ("1.5", "18446744073709551615").
  const std::string &numberToken() const;

  // Arrays.
  void push(JsonValue V);
  std::size_t size() const { return Items.size(); }
  const JsonValue &at(std::size_t I) const { return Items[I]; }

  // Objects (insertion-ordered).
  void set(std::string Key, JsonValue V);
  /// Member lookup; nullptr when absent.
  const JsonValue *find(const std::string &Key) const;
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }

  /// Compact, deterministic serialization (no whitespace, insertion order).
  std::string write() const;

private:
  Kind K = Kind::Null;
  bool BoolV = false;
  std::string Text; // number token or string payload
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;

  void writeTo(std::string &Out) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). On failure returns std::nullopt and fills \p Err with a
/// message that includes the byte offset.
std::optional<JsonValue> parseJson(const std::string &Text,
                                   std::string *Err = nullptr);

} // namespace offchip

#endif // OFFCHIP_API_JSON_H
