//===- support/Options.h - Declarative CLI flag parsing ---------*- C++ -*-===//
///
/// \file
/// A small declarative command-line parser shared by the tool and every
/// bench binary. Callers register flags bound to variables (or callbacks
/// for structured values like "8x8"), then parse(); unmatched non-dash
/// arguments are collected as positionals. Keeps the per-binary strcmp
/// ladders out of main().
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_OPTIONS_H
#define OFFCHIP_SUPPORT_OPTIONS_H

#include <functional>
#include <string>
#include <vector>

namespace offchip {

class OptionsParser {
public:
  /// \param Tool     binary name for the usage line
  /// \param Overview one-line description printed by --help
  OptionsParser(std::string Tool, std::string Overview);

  /// Boolean switch: "--name" sets *Out to true.
  void flag(const std::string &Name, bool *Out, const std::string &Help);

  /// "--name <N>" parsed as an unsigned integer.
  void value(const std::string &Name, unsigned *Out, const std::string &Help);

  /// "--name <S>" stored verbatim.
  void value(const std::string &Name, std::string *Out,
             const std::string &Help);

  /// "--name <V>" handed to \p Parse; return false to reject the value.
  void custom(const std::string &Name, const std::string &ValueName,
              std::function<bool(const std::string &)> Parse,
              const std::string &Help);

  /// Declares the positional arguments for the usage line, e.g.
  /// "<program.txt>".
  void positionalHelp(std::string Text) { PositionalText = std::move(Text); }

  /// Parses \p Argv. On failure, fills \p Err with a diagnostic and returns
  /// false. "--help" is handled built-in: \p Err is set to the full help
  /// text and false is returned with \p WantedHelp (when non-null) set.
  bool parse(int Argc, char **Argv, std::string *Err,
             bool *WantedHelp = nullptr);

  const std::vector<std::string> &positional() const { return Positionals; }

  /// Full help text: usage line plus one line per registered option.
  std::string helpText() const;

private:
  struct Spec {
    std::string Name;      // including leading dashes
    std::string ValueName; // empty for bare switches
    std::string Help;
    std::function<bool(const std::string &)> Parse; // null for switches
    bool *FlagOut = nullptr;
  };

  std::string Tool;
  std::string Overview;
  std::string PositionalText;
  std::vector<Spec> Specs;
  std::vector<std::string> Positionals;
};

} // namespace offchip

#endif // OFFCHIP_SUPPORT_OPTIONS_H
