//===- support/SpscQueue.h - Bounded single-producer ring -------*- C++ -*-===//
///
/// \file
/// A fixed-capacity single-producer single-consumer ring buffer. The parallel
/// simulation engine moves cross-shard events and resume notices through
/// these: one producer thread pushes, one consumer thread pops, and the only
/// synchronization is an acquire/release pair on the head/tail indices, so a
/// transfer costs two atomic operations and no locks.
///
/// Capacity is fixed at construction and must be sized by the caller so that
/// push() never meets a full ring (the engine bounds in-flight work per node;
/// see ParallelEngine.cpp). tryPush() reports fullness instead of blocking,
/// and the debug build asserts on overflow so sizing bugs surface loudly.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_SPSCQUEUE_H
#define OFFCHIP_SUPPORT_SPSCQUEUE_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

namespace offchip {

template <typename T> class SpscQueue {
public:
  /// \p Capacity is rounded up to a power of two (index masking).
  explicit SpscQueue(std::size_t Capacity) {
    std::size_t C = 1;
    while (C < Capacity)
      C <<= 1;
    Slots.resize(C);
    Mask = C - 1;
  }

  SpscQueue(const SpscQueue &) = delete;
  SpscQueue &operator=(const SpscQueue &) = delete;

  /// Producer side. \returns false when the ring is full.
  bool tryPush(const T &Value) {
    std::size_t T0 = Tail.load(std::memory_order_relaxed);
    std::size_t H = Head.load(std::memory_order_acquire);
    if (T0 - H > Mask)
      return false;
    Slots[T0 & Mask] = Value;
    // The release pairs with the consumer's acquire: the slot write above
    // (and everything the producer did before it) is visible once the
    // consumer observes the new tail.
    Tail.store(T0 + 1, std::memory_order_release);
    return true;
  }

  /// Producer side; the ring must have room (engine-enforced bound).
  void push(const T &Value) {
    bool Ok = tryPush(Value);
    (void)Ok;
    assert(Ok && "SpscQueue overflow: capacity bound violated");
  }

  /// Consumer side. \returns false when the ring is empty.
  bool tryPop(T &Out) {
    std::size_t H = Head.load(std::memory_order_relaxed);
    std::size_t T0 = Tail.load(std::memory_order_acquire);
    if (H == T0)
      return false;
    Out = Slots[H & Mask];
    Head.store(H + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness probe (racy by nature; used for idle checks).
  bool empty() const {
    return Head.load(std::memory_order_acquire) ==
           Tail.load(std::memory_order_acquire);
  }

private:
  std::vector<T> Slots;
  std::size_t Mask = 0;
  /// Separate cache lines: the producer writes Tail while the consumer
  /// writes Head; sharing a line would bounce it on every transfer.
  alignas(64) std::atomic<std::size_t> Head{0};
  alignas(64) std::atomic<std::size_t> Tail{0};
};

} // namespace offchip

#endif // OFFCHIP_SUPPORT_SPSCQUEUE_H
