//===- support/SpscQueue.h - Bounded single-producer ring -------*- C++ -*-===//
///
/// \file
/// A fixed-capacity single-producer single-consumer ring buffer. The parallel
/// simulation engine moves cross-shard events and resume notices through
/// these: one producer thread pushes, one consumer thread pops, and the only
/// synchronization is an acquire/release pair on the head/tail indices, so a
/// transfer costs two atomic operations and no locks.
///
/// Capacity is fixed at construction and must be sized by the caller so that
/// push() never meets a full ring (the engine bounds in-flight work per node;
/// see ParallelEngine.cpp). tryPush() reports fullness instead of blocking,
/// and the debug build asserts on overflow so sizing bugs surface loudly.
///
/// Chunked transfer: pushAll()/popAll() move a whole batch of elements under
/// a single release/acquire index pair, so a window of N events costs the
/// same two atomic operations as a single event — the amortization behind
/// the parallel engine's batched window drains (MachineConfig::
/// SimWindowBatch).
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_SPSCQUEUE_H
#define OFFCHIP_SUPPORT_SPSCQUEUE_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

namespace offchip {

template <typename T> class SpscQueue {
public:
  /// \p Capacity is rounded up to a power of two (index masking).
  explicit SpscQueue(std::size_t Capacity) {
    std::size_t C = 1;
    while (C < Capacity)
      C <<= 1;
    Slots.resize(C);
    Mask = C - 1;
  }

  SpscQueue(const SpscQueue &) = delete;
  SpscQueue &operator=(const SpscQueue &) = delete;

  /// Producer side. \returns false when the ring is full.
  bool tryPush(const T &Value) {
    std::size_t T0 = Tail.load(std::memory_order_relaxed);
    std::size_t H = Head.load(std::memory_order_acquire);
    if (T0 - H > Mask)
      return false;
    Slots[T0 & Mask] = Value;
    // The release pairs with the consumer's acquire: the slot write above
    // (and everything the producer did before it) is visible once the
    // consumer observes the new tail.
    Tail.store(T0 + 1, std::memory_order_release);
    return true;
  }

  /// Producer side; the ring must have room (engine-enforced bound).
  void push(const T &Value) {
    bool Ok = tryPush(Value);
    (void)Ok;
    assert(Ok && "SpscQueue overflow: capacity bound violated");
  }

  /// Producer side, chunked: appends \p N elements from \p Values under one
  /// release store. The ring must have room for the whole chunk (the engine
  /// bounds in-flight work at one event per node, and chunk buffers are
  /// flushed before they can exceed that bound).
  void pushAll(const T *Values, std::size_t N) {
    if (N == 0)
      return;
    std::size_t T0 = Tail.load(std::memory_order_relaxed);
    std::size_t H = Head.load(std::memory_order_acquire);
    assert(T0 - H + N <= Mask + 1 &&
           "SpscQueue overflow: chunk exceeds capacity bound");
    (void)H;
    for (std::size_t I = 0; I < N; ++I)
      Slots[(T0 + I) & Mask] = Values[I];
    // One release publishes the whole chunk (and everything the producer
    // wrote before it) — the batched-drain amortization.
    Tail.store(T0 + N, std::memory_order_release);
  }

  /// Consumer side. \returns false when the ring is empty.
  bool tryPop(T &Out) {
    std::size_t H = Head.load(std::memory_order_relaxed);
    std::size_t T0 = Tail.load(std::memory_order_acquire);
    if (H == T0)
      return false;
    Out = Slots[H & Mask];
    Head.store(H + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, chunked: pops up to \p Max elements into \p Out under
  /// one acquire/release index pair. \returns the number popped (zero when
  /// the ring is empty).
  std::size_t popAll(T *Out, std::size_t Max) {
    std::size_t H = Head.load(std::memory_order_relaxed);
    std::size_t T0 = Tail.load(std::memory_order_acquire);
    std::size_t N = T0 - H;
    if (N > Max)
      N = Max;
    for (std::size_t I = 0; I < N; ++I)
      Out[I] = Slots[(H + I) & Mask];
    if (N != 0)
      Head.store(H + N, std::memory_order_release);
    return N;
  }

  /// Consumer-side emptiness probe (racy by nature; used for idle checks).
  bool empty() const {
    return Head.load(std::memory_order_acquire) ==
           Tail.load(std::memory_order_acquire);
  }

private:
  // False-sharing audit (perf-c2c reasoning; see also ParallelEngine.cpp's
  // Worker layout): the three mutable locations of a queue have three
  // distinct writers' access patterns — Slots is written by the producer
  // and read by the consumer (handoff traffic, unavoidable), Head is
  // written only by the consumer, Tail only by the producer. If Head and
  // Tail shared a line, every push would invalidate the consumer's cached
  // copy of Head (and vice versa), turning each transfer into two extra
  // coherence round trips; alignas(64) on both keeps each index's line
  // owned by its single writer, and the trailing padding implied by the
  // alignment keeps Tail from sharing its line with whatever the enclosing
  // struct places after the queue.
  std::vector<T> Slots;
  std::size_t Mask = 0;
  /// Separate cache lines: the producer writes Tail while the consumer
  /// writes Head; sharing a line would bounce it on every transfer.
  alignas(64) std::atomic<std::size_t> Head{0};
  alignas(64) std::atomic<std::size_t> Tail{0};
};

} // namespace offchip

#endif // OFFCHIP_SUPPORT_SPSCQUEUE_H
