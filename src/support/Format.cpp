//===- support/Format.cpp -------------------------------------------------===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>

using namespace offchip;

std::string offchip::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Len < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<std::size_t>(Len), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string offchip::formatPercent(double Fraction) {
  return formatString("%.1f%%", Fraction * 100.0);
}

std::string offchip::padRight(std::string S, unsigned Width) {
  if (S.size() < Width)
    S.append(Width - S.size(), ' ');
  return S;
}

std::string offchip::padLeft(std::string S, unsigned Width) {
  if (S.size() < Width)
    S.insert(0, Width - S.size(), ' ');
  return S;
}
