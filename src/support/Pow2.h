//===- support/Pow2.h - Precomputed division helpers ------------*- C++ -*-===//
///
/// \file
/// Shift/mask division for the simulator's address-decode hot paths. Every
/// per-access decode (cache set/line extraction, MC interleave selection,
/// page-number math, bank indexing) divides by a configuration constant that
/// is almost always a power of two; Pow2Divider precomputes the shift and
/// mask once at construction and falls back to hardware div/mod for
/// non-power-of-two configurations, so fast and generic paths are exactly
/// equivalent by construction.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_POW2_H
#define OFFCHIP_SUPPORT_POW2_H

#include "support/MathUtil.h"

#include <cassert>
#include <cstdint>

namespace offchip {

/// Divides/reduces unsigned 64-bit values by a fixed positive divisor.
class Pow2Divider {
public:
  /// Divisor 1: div is the identity, mod is always zero.
  Pow2Divider() = default;

  explicit Pow2Divider(std::uint64_t Divisor) : D(Divisor) {
    assert(Divisor != 0 && "divider needs a positive divisor");
    IsPow2 = !ForceGenericDivision && isPowerOfTwo(Divisor);
    if (IsPow2) {
      Shift = log2Floor(Divisor);
      Mask = Divisor - 1;
    }
  }

  /// Test-only: when set, dividers constructed afterwards take the generic
  /// div/mod path even for power-of-two divisors. The differential fuzzer
  /// and the fast-path equivalence tests use it to run the *same* config
  /// down both decode paths; results must be bit-identical. Not
  /// thread-safe — flip it only before any simulation threads exist.
  static void setForceGenericDivision(bool Force) {
    ForceGenericDivision = Force;
  }
  static bool forceGenericDivision() { return ForceGenericDivision; }

  std::uint64_t divisor() const { return D; }

  /// X / divisor.
  std::uint64_t div(std::uint64_t X) const {
    return IsPow2 ? X >> Shift : X / D;
  }

  /// X % divisor.
  std::uint64_t mod(std::uint64_t X) const {
    return IsPow2 ? (X & Mask) : X % D;
  }

private:
  static bool ForceGenericDivision; // defined in support/Pow2.cpp

  std::uint64_t D = 1;
  std::uint64_t Mask = 0;
  unsigned Shift = 0;
  bool IsPow2 = true;
};

} // namespace offchip

#endif // OFFCHIP_SUPPORT_POW2_H
