//===- support/Options.cpp ------------------------------------------------===//

#include "support/Options.h"

#include "support/Format.h"

using namespace offchip;

OptionsParser::OptionsParser(std::string ToolName, std::string OverviewText)
    : Tool(std::move(ToolName)), Overview(std::move(OverviewText)) {}

void OptionsParser::flag(const std::string &Name, bool *Out,
                         const std::string &Help) {
  Spec S;
  S.Name = Name;
  S.Help = Help;
  S.FlagOut = Out;
  Specs.push_back(std::move(S));
}

void OptionsParser::value(const std::string &Name, unsigned *Out,
                          const std::string &Help) {
  // Hand-rolled digits-only parse. strtoul is the wrong contract here: it
  // wraps "-1" to ULONG_MAX, saturates out-of-range values instead of
  // failing, and skips leading whitespace — all of which silently turn user
  // typos into huge thread/MC counts.
  custom(Name, "<N>",
         [Out](const std::string &V) {
           if (V.empty())
             return false;
           unsigned long long Parsed = 0;
           for (char C : V) {
             if (C < '0' || C > '9')
               return false;
             Parsed = Parsed * 10 + static_cast<unsigned>(C - '0');
             if (Parsed > 0xFFFFFFFFull)
               return false;
           }
           *Out = static_cast<unsigned>(Parsed);
           return true;
         },
         Help);
}

void OptionsParser::value(const std::string &Name, std::string *Out,
                          const std::string &Help) {
  custom(Name, "<S>",
         [Out](const std::string &V) {
           *Out = V;
           return true;
         },
         Help);
}

void OptionsParser::custom(const std::string &Name,
                           const std::string &ValueName,
                           std::function<bool(const std::string &)> Parse,
                           const std::string &Help) {
  Spec S;
  S.Name = Name;
  S.ValueName = ValueName;
  S.Help = Help;
  S.Parse = std::move(Parse);
  Specs.push_back(std::move(S));
}

std::string OptionsParser::helpText() const {
  std::string Out = "usage: " + Tool + " [options]";
  if (!PositionalText.empty())
    Out += " " + PositionalText;
  Out += "\n" + Overview + "\n\noptions:\n";
  for (const Spec &S : Specs) {
    std::string Left = "  " + S.Name;
    if (!S.ValueName.empty())
      Left += " " + S.ValueName;
    Out += padRight(Left, 26) + S.Help + "\n";
  }
  Out += padRight("  --help", 26) + "print this help\n";
  return Out;
}

bool OptionsParser::parse(int Argc, char **Argv, std::string *Err,
                          bool *WantedHelp) {
  Positionals.clear();
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      if (WantedHelp)
        *WantedHelp = true;
      if (Err)
        *Err = helpText();
      return false;
    }
    if (Arg.empty() || Arg[0] != '-') {
      Positionals.push_back(std::move(Arg));
      continue;
    }
    const Spec *Match = nullptr;
    for (const Spec &S : Specs)
      if (S.Name == Arg) {
        Match = &S;
        break;
      }
    if (!Match) {
      if (Err)
        *Err = "unknown option '" + Arg + "'";
      return false;
    }
    if (Match->FlagOut) {
      *Match->FlagOut = true;
      continue;
    }
    if (I + 1 >= Argc) {
      if (Err)
        *Err = "option '" + Arg + "' requires a value";
      return false;
    }
    std::string Value = Argv[++I];
    if (!Match->Parse(Value)) {
      if (Err)
        *Err = "invalid value '" + Value + "' for option '" + Arg + "'";
      return false;
    }
  }
  return true;
}
