//===- support/FlatMap.h - Open-addressing uint64 hash map ------*- C++ -*-===//
///
/// \file
/// A linear-probing hash map from uint64 keys to uint64 values, built for
/// the directory's line -> sharer-mask table: one flat allocation, no
/// per-node boxes, and lookups that touch a single cache line in the common
/// case. std::unordered_map allocates a node per line and chases a bucket
/// pointer per probe, which dominates the directory's profile once a run
/// tracks hundreds of thousands of lines.
///
/// Capacity is a power of two; slots hash with a Fibonacci multiplier so
/// that the low-entropy, stride-patterned line addresses the simulator
/// produces spread over the table. Deletion uses backward-shift compaction
/// (no tombstones), so probe chains never degrade over a run's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_FLATMAP_H
#define OFFCHIP_SUPPORT_FLATMAP_H

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace offchip {

/// Hash map uint64 -> uint64. The key ~0 is reserved as the empty sentinel
/// and must not be inserted (line addresses never reach it: they are byte
/// addresses divided by the line size).
class FlatMap64 {
public:
  static constexpr std::uint64_t EmptyKey = ~0ull;

  explicit FlatMap64(std::size_t MinCapacity = 16) {
    std::size_t Cap = 16;
    while (Cap < MinCapacity)
      Cap <<= 1;
    initTable(Cap);
  }

  std::size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  std::size_t capacity() const { return Slots.size(); }

  /// \returns a pointer to the value of \p Key, or nullptr when absent.
  const std::uint64_t *find(std::uint64_t Key) const {
    assert(Key != EmptyKey && "the all-ones key is reserved");
    for (std::size_t I = homeOf(Key);; I = nextSlot(I)) {
      const Slot &S = Slots[I];
      if (S.Key == Key)
        return &S.Value;
      if (S.Key == EmptyKey)
        return nullptr;
    }
  }

  /// Mutable lookup; nullptr when absent. Never grows the table.
  std::uint64_t *find(std::uint64_t Key) {
    return const_cast<std::uint64_t *>(
        static_cast<const FlatMap64 *>(this)->find(Key));
  }

  /// \returns the value slot for \p Key, inserting a zero value when absent.
  std::uint64_t &refOrInsert(std::uint64_t Key) {
    assert(Key != EmptyKey && "the all-ones key is reserved");
    if ((Count + 1) * 10 >= Slots.size() * 7) {
      assert(Iterating == 0 && "rehash during forEach would corrupt the walk");
      grow();
    }
    for (std::size_t I = homeOf(Key);; I = nextSlot(I)) {
      Slot &S = Slots[I];
      if (S.Key == Key)
        return S.Value;
      if (S.Key == EmptyKey) {
        S.Key = Key;
        S.Value = 0;
        ++Count;
        return S.Value;
      }
    }
  }

  /// Removes \p Key. \returns true when it was present.
  ///
  /// Must not be called from inside forEach: backward-shift compaction moves
  /// surviving entries to earlier slots, so a concurrent slot walk would
  /// skip some entries and visit others twice. Collect keys first, then
  /// erase after the walk (debug builds assert on violation).
  bool erase(std::uint64_t Key) {
    assert(Key != EmptyKey && "the all-ones key is reserved");
    assert(Iterating == 0 && "erase during forEach would corrupt the walk");
    std::size_t I = homeOf(Key);
    for (;; I = nextSlot(I)) {
      if (Slots[I].Key == Key)
        break;
      if (Slots[I].Key == EmptyKey)
        return false;
    }
    // Backward-shift compaction: pull each displaced follower into the hole
    // so every surviving entry stays reachable from its home slot.
    std::size_t Hole = I;
    for (std::size_t J = nextSlot(I);; J = nextSlot(J)) {
      const Slot &S = Slots[J];
      if (S.Key == EmptyKey)
        break;
      std::size_t Home = homeOf(S.Key);
      // S may move into the hole only if the hole lies within its probe
      // path, i.e. cyclically between its home and its current position.
      bool HoleInPath = J >= Home ? (Hole >= Home && Hole < J)
                                  : (Hole >= Home || Hole < J);
      if (HoleInPath) {
        Slots[Hole] = S;
        Hole = J;
      }
    }
    Slots[Hole].Key = EmptyKey;
    --Count;
    return true;
  }

  /// Pre-sizes the table for \p N entries without rehashing churn.
  void reserve(std::size_t N) {
    std::size_t Need = 16;
    while (N * 10 >= Need * 7)
      Need <<= 1;
    if (Need > Slots.size())
      rehash(Need);
  }

  void clear() {
    for (Slot &S : Slots)
      S.Key = EmptyKey;
    Count = 0;
  }

  /// Invokes \p Fn(Key, Value) for every entry (unspecified order). \p Fn
  /// must not erase from or insert into this map (debug builds assert);
  /// collect keys during the walk and mutate afterwards.
  template <typename FnT> void forEach(FnT Fn) const {
#ifndef NDEBUG
    ++Iterating;
#endif
    for (const Slot &S : Slots)
      if (S.Key != EmptyKey)
        Fn(S.Key, S.Value);
#ifndef NDEBUG
    --Iterating;
#endif
  }

  /// Finds the first occupied slot at or after *\p Cursor (slot index,
  /// wrapping once past the end), stores its key into *\p Key, and advances
  /// *\p Cursor past that slot. Deterministic for a given insertion history,
  /// which is what the sparse directory's victim rotation needs. \returns
  /// false when the map is empty.
  bool nextKey(std::size_t *Cursor, std::uint64_t *Key) const {
    if (Count == 0)
      return false;
    std::size_t Cap = Slots.size();
    std::size_t Start = *Cursor % Cap;
    for (std::size_t Off = 0; Off < Cap; ++Off) {
      std::size_t I = (Start + Off) & (Cap - 1);
      if (Slots[I].Key != EmptyKey) {
        *Key = Slots[I].Key;
        *Cursor = I + 1;
        return true;
      }
    }
    return false;
  }

private:
  struct Slot {
    std::uint64_t Key = EmptyKey;
    std::uint64_t Value = 0;
  };

  std::size_t homeOf(std::uint64_t Key) const {
    return static_cast<std::size_t>((Key * 0x9E3779B97F4A7C15ull) >>
                                    ShiftBits);
  }

  std::size_t nextSlot(std::size_t I) const {
    return (I + 1) & (Slots.size() - 1);
  }

  void initTable(std::size_t Cap) {
    Slots.assign(Cap, Slot());
    ShiftBits = 64;
    while ((1ull << (64 - ShiftBits)) < Cap)
      --ShiftBits;
  }

  void rehash(std::size_t NewCap) {
    std::vector<Slot> Old = std::move(Slots);
    initTable(NewCap);
    Count = 0;
    for (const Slot &S : Old)
      if (S.Key != EmptyKey)
        refOrInsert(S.Key) = S.Value;
  }

  void grow() { rehash(Slots.size() * 2); }

  std::vector<Slot> Slots;
  std::size_t Count = 0;
  unsigned ShiftBits = 60; // 64 - log2(capacity)
#ifndef NDEBUG
  /// Depth of active forEach walks; erase/rehash assert it is zero.
  mutable int Iterating = 0;
#endif
};

} // namespace offchip

#endif // OFFCHIP_SUPPORT_FLATMAP_H
