//===- support/HostClock.cpp ----------------------------------------------===//

#include "support/HostClock.h"

#include <algorithm>
#include <chrono>

using namespace offchip;

namespace {

ClockCalibration measure() {
  using Clock = std::chrono::steady_clock;
  // Time N empty timing pairs: the pairs' own accumulated readings give the
  // apparent overhead, the loop's wall time gives the true cost. One warmup
  // pass pulls the clock code into cache so the measurement reflects the
  // steady state the hot loop sees.
  constexpr int N = 1 << 18;
  ClockCalibration Result;
  for (int Pass = 0; Pass < 2; ++Pass) {
    double Apparent = 0.0;
    Clock::time_point LoopStart = Clock::now();
    for (int I = 0; I < N; ++I) {
      Clock::time_point T0 = Clock::now();
      Apparent += std::chrono::duration<double>(Clock::now() - T0).count();
    }
    double Wall = std::chrono::duration<double>(Clock::now() - LoopStart)
                      .count();
    Result.ApparentPerCall = Apparent / N;
    Result.WallPerCall = Wall / N;
  }
  return Result;
}

} // namespace

const ClockCalibration &offchip::clockCalibration() {
  static const ClockCalibration C = measure();
  return C;
}

double offchip::correctedPhaseSeconds(double AccumSeconds,
                                      std::uint64_t TimedCalls) {
  double Overhead =
      clockCalibration().ApparentPerCall * static_cast<double>(TimedCalls);
  return std::max(0.0, AccumSeconds - Overhead);
}

double offchip::correctedTotalSeconds(double TotalSeconds,
                                      std::uint64_t TimedCalls) {
  double Overhead =
      clockCalibration().WallPerCall * static_cast<double>(TimedCalls);
  return std::max(0.0, TotalSeconds - Overhead);
}
