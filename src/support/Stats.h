//===- support/Stats.h - Statistics accumulators ----------------*- C++ -*-===//
///
/// \file
/// Accumulators used by the simulators to aggregate latencies, hop counts and
/// queue occupancies, plus a small integer histogram that can render the
/// link-traversal CDF of Figure 15.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_STATS_H
#define OFFCHIP_SUPPORT_STATS_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace offchip {

/// Running sum/count/min/max of a stream of samples.
class Accumulator {
public:
  void addSample(double Value) {
    Sum += Value;
    if (Count == 0 || Value < Min)
      Min = Value;
    if (Count == 0 || Value > Max)
      Max = Value;
    ++Count;
  }

  /// Merges another accumulator into this one.
  void merge(const Accumulator &Other);

  std::uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double mean() const { return Count == 0 ? 0.0 : Sum / Count; }
  double min() const { return Count == 0 ? 0.0 : Min; }
  double max() const { return Count == 0 ? 0.0 : Max; }
  bool empty() const { return Count == 0; }

  void reset() { *this = Accumulator(); }

  /// Reconstructs an accumulator from its exposed moments (the inverse of
  /// serializing count/sum/min/max, e.g. over the service wire protocol).
  /// A zero \p Count yields the empty accumulator regardless of the other
  /// arguments.
  static Accumulator fromMoments(std::uint64_t Count, double Sum, double Min,
                                 double Max) {
    Accumulator A;
    if (Count == 0)
      return A;
    A.Count = Count;
    A.Sum = Sum;
    A.Min = Min;
    A.Max = Max;
    return A;
  }

private:
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  std::uint64_t Count = 0;
};

/// Histogram over small non-negative integers (e.g., hop counts). Buckets
/// grow on demand; samples beyond a configurable cap land in the last bucket.
class IntHistogram {
public:
  explicit IntHistogram(unsigned MaxBucket = 256) : MaxBucket(MaxBucket) {}

  void addSample(std::uint64_t Value);

  /// Total number of samples recorded.
  std::uint64_t total() const { return Total; }

  /// Count in bucket \p B (0 if never touched).
  std::uint64_t countAt(unsigned B) const {
    return B < Buckets.size() ? Buckets[B] : 0;
  }

  /// Largest bucket index that has at least one sample (0 when empty).
  unsigned maxNonEmptyBucket() const;

  /// \returns the fraction of samples with value <= B, i.e. the CDF used by
  /// Figure 15. Returns 1.0 for an empty histogram to keep plots sane.
  double cdfAt(unsigned B) const;

  /// Weighted mean of the bucket indices.
  double mean() const;

  void reset();

  /// The overflow cap this histogram was constructed with (samples beyond
  /// it land in the last bucket).
  unsigned cap() const { return MaxBucket; }

  /// Reconstructs a histogram from its bucket counts (the inverse of
  /// serializing cap + countAt(0..maxNonEmptyBucket), e.g. over the service
  /// wire protocol). Equivalent to replaying every sample, without the
  /// replay.
  static IntHistogram fromBuckets(unsigned Cap,
                                  std::vector<std::uint64_t> Buckets) {
    IntHistogram H(Cap);
    H.Buckets = std::move(Buckets);
    for (std::uint64_t C : H.Buckets)
      H.Total += C;
    return H;
  }

private:
  unsigned MaxBucket;
  std::vector<std::uint64_t> Buckets;
  std::uint64_t Total = 0;
};

} // namespace offchip

#endif // OFFCHIP_SUPPORT_STATS_H
