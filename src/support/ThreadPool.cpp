//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Error.h"

using namespace offchip;

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = hardwareThreads();
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Ready.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping)
      reportFatalError("ThreadPool::submit after shutdown");
    Queue.push_back(std::move(Task));
  }
  Ready.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Ready.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}
