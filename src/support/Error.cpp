//===- support/Error.cpp --------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void offchip::reportFatalError(const char *Msg) {
  std::fprintf(stderr, "offchip-opt fatal error: %s\n", Msg);
  std::abort();
}
