//===- support/Pow2.cpp ---------------------------------------------------===//

#include "support/Pow2.h"

using namespace offchip;

bool Pow2Divider::ForceGenericDivision = false;
