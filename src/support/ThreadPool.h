//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
///
/// \file
/// A fixed-size thread pool for fanning independent jobs (simulation runs,
/// sweeps) across hardware cores. Tasks are executed in FIFO submission
/// order by whichever worker frees up first; results and exceptions travel
/// back through the std::future returned by submit(). Destruction drains
/// the queue: every task submitted before the destructor runs is completed
/// before the workers join.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_THREADPOOL_H
#define OFFCHIP_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace offchip {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Completes all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Fn and returns a future for its result. If \p Fn throws,
  /// the exception is rethrown from the future's get().
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> submit(Fn &&F) {
    using R = std::invoke_result_t<Fn>;
    auto Task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(F));
    std::future<R> Fut = Task->get_future();
    enqueue([Task] { (*Task)(); });
    return Fut;
  }

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Number of concurrent hardware threads, never less than 1.
  static unsigned hardwareThreads();

private:
  void enqueue(std::function<void()> Task);
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable Ready;
  bool Stopping = false;
};

} // namespace offchip

#endif // OFFCHIP_SUPPORT_THREADPOOL_H
