//===- support/Shard.h - Mesh shard partitioning ----------------*- C++ -*-===//
///
/// \file
/// Helpers for splitting the mesh's nodes into per-worker shards for the
/// parallel simulation engine. Shards are contiguous node-id ranges balanced
/// by thread count, so a worker owns whole tiles (L1, private L2 slice and
/// the threads bound to them) and all remaining state stays with the merger.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_SHARD_H
#define OFFCHIP_SUPPORT_SHARD_H

#include <cassert>
#include <cstdint>
#include <thread>
#include <vector>

namespace offchip {

/// One worker's slice of the mesh: nodes [Begin, End).
struct ShardRange {
  unsigned Begin = 0;
  unsigned End = 0;

  unsigned size() const { return End - Begin; }
  bool contains(unsigned Node) const { return Node >= Begin && Node < End; }
};

/// Splits \p Weights.size() nodes into at most \p NumShards contiguous
/// ranges with near-equal total weight (weight = threads bound to the node,
/// so multiprogrammed co-runs with several threads per node still balance).
/// Nodes with zero weight are absorbed into a neighbouring range. Returns
/// fewer ranges when there are fewer weighted nodes than shards; never
/// returns an empty range.
inline std::vector<ShardRange>
shardRanges(const std::vector<std::uint64_t> &Weights, unsigned NumShards) {
  assert(NumShards > 0 && "need at least one shard");
  unsigned N = static_cast<unsigned>(Weights.size());
  std::uint64_t Total = 0;
  for (std::uint64_t W : Weights)
    Total += W;

  std::vector<ShardRange> Out;
  if (N == 0 || Total == 0)
    return Out;

  // Greedy prefix cuts at multiples of Total/NumShards: shard k ends at the
  // first node whose cumulative weight reaches (k+1)/NumShards of the total.
  std::uint64_t Acc = 0;
  unsigned Begin = 0;
  for (unsigned Node = 0; Node < N; ++Node) {
    Acc += Weights[Node];
    unsigned K = static_cast<unsigned>(Out.size());
    std::uint64_t Target = (Total * (K + 1) + NumShards - 1) / NumShards;
    if (Acc >= Target && K + 1 < NumShards) {
      Out.push_back({Begin, Node + 1});
      Begin = Node + 1;
    }
  }
  if (Begin < N)
    Out.push_back({Begin, N});
  assert(!Out.empty() && Out.back().End == N && "ranges must cover all nodes");
  return Out;
}

/// Debug-build ownership tag for sliced state (directory slices, link
/// calendars, MC queues). While bound, only the binding thread may touch the
/// tagged state; every access asserts that. Unbound tags (the serial engine)
/// accept any thread. Compiles to nothing in release builds.
class OwnerTag {
public:
#ifndef NDEBUG
  void bindToCurrentThread() {
    Owner = std::this_thread::get_id();
    Bound = true;
  }
  void release() { Bound = false; }
  void assertHeld() const {
    assert((!Bound || Owner == std::this_thread::get_id()) &&
           "cross-shard access to owned state");
  }

private:
  std::thread::id Owner;
  bool Bound = false;
#else
  void bindToCurrentThread() {}
  void release() {}
  void assertHeld() const {}
#endif
};

} // namespace offchip

#endif // OFFCHIP_SUPPORT_SHARD_H
