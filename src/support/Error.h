//===- support/Error.h - Fatal-error and unreachable helpers ---*- C++ -*-===//
//
// Part of the offchip-opt project: a reproduction of "Optimizing Off-Chip
// Accesses in Multicores" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error reporting used throughout the project. Library code
/// never throws; invariant violations abort with a message, and recoverable
/// conditions are modeled with return values at the API boundary.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_ERROR_H
#define OFFCHIP_SUPPORT_ERROR_H

namespace offchip {

/// Prints \p Msg to stderr and aborts. Used for invariant violations that
/// cannot be expressed as an assert (e.g., in release builds) and for
/// unrecoverable configuration errors in tools.
[[noreturn]] void reportFatalError(const char *Msg);

} // namespace offchip

/// Marks a point in code that must never be reached. Aborts with \p Msg.
#define OFFCHIP_UNREACHABLE(Msg) ::offchip::reportFatalError(Msg)

#endif // OFFCHIP_SUPPORT_ERROR_H
