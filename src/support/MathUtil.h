//===- support/MathUtil.h - Small integer math helpers ---------*- C++ -*-===//
///
/// \file
/// Integer helpers shared by the layout machinery and the simulators. The
/// Euclidean division helpers matter for layout transformation correctness:
/// strip-mining formulas in the paper assume non-negative indices, but
/// intermediate affine expressions can be negative, so all layout code funnels
/// division/modulo through floorDiv/floorMod.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_MATHUTIL_H
#define OFFCHIP_SUPPORT_MATHUTIL_H

#include <cassert>
#include <cstdint>

namespace offchip {

/// \returns the quotient of \p A / \p B rounded toward negative infinity.
inline std::int64_t floorDiv(std::int64_t A, std::int64_t B) {
  assert(B != 0 && "floorDiv by zero");
  std::int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

/// \returns A mod B with the sign of B (floored modulo): in [0, B) for
/// positive B — the only case the layout code uses — and in (B, 0] for
/// negative B. Pairs with floorDiv so that
/// A == floorDiv(A, B) * B + floorMod(A, B) for every nonzero B.
inline std::int64_t floorMod(std::int64_t A, std::int64_t B) {
  std::int64_t R = A - floorDiv(A, B) * B;
  assert((B > 0 ? R >= 0 && R < B : R <= 0 && R > B) &&
         "floorMod result must lie between 0 and B");
  return R;
}

/// \returns ceil(A / B) for non-negative A and positive B.
inline std::uint64_t ceilDiv(std::uint64_t A, std::uint64_t B) {
  assert(B != 0 && "ceilDiv by zero");
  return (A + B - 1) / B;
}

/// \returns true if \p X is a power of two (0 is not).
inline bool isPowerOfTwo(std::uint64_t X) { return X != 0 && (X & (X - 1)) == 0; }

/// \returns floor(log2(X)); X must be non-zero.
inline unsigned log2Floor(std::uint64_t X) {
  assert(X != 0 && "log2Floor of zero");
  unsigned L = 0;
  while (X >>= 1)
    ++L;
  return L;
}

/// \returns ceil(log2(X)); X must be non-zero.
inline unsigned log2Ceil(std::uint64_t X) {
  assert(X != 0 && "log2Ceil of zero");
  return isPowerOfTwo(X) ? log2Floor(X) : log2Floor(X) + 1;
}

/// \returns the greatest common divisor of |A| and |B| (gcd(0,0) == 0).
inline std::int64_t gcd64(std::int64_t A, std::int64_t B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    std::int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// \returns \p X rounded up to the next multiple of \p Align (Align > 0).
inline std::uint64_t alignTo(std::uint64_t X, std::uint64_t Align) {
  assert(Align != 0 && "alignTo by zero");
  return ceilDiv(X, Align) * Align;
}

} // namespace offchip

#endif // OFFCHIP_SUPPORT_MATHUTIL_H
