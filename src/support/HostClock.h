//===- support/HostClock.h - Host clock overhead calibration ----*- C++ -*-===//
///
/// \file
/// The opt-in phase timers (MachineConfig::CollectPhaseTimes) wrap hot-path
/// calls in steady_clock reads. Each wrapped call inflates two measurements:
/// the phase accumulator absorbs the time between the two clock reads even
/// for an empty body, and the run's end-to-end wall time grows by the full
/// cost of both reads. Calibrating that overhead once per process lets the
/// reported phase and total times subtract it, so `timed_total_s` tracks the
/// untimed `seconds` instead of inflating it.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_HOSTCLOCK_H
#define OFFCHIP_SUPPORT_HOSTCLOCK_H

#include <cstdint>

namespace offchip {

/// Measured cost of one `T0 = now(); Accum += now() - T0` timing pair.
struct ClockCalibration {
  /// Seconds the pair *reports* for an empty body (what leaks into a phase
  /// accumulator per timed call).
  double ApparentPerCall = 0.0;
  /// Wall-clock seconds the pair *costs* the run per timed call (what leaks
  /// into the end-to-end total per timed call).
  double WallPerCall = 0.0;
};

/// The process-wide calibration, measured once on first use (~10 ms).
const ClockCalibration &clockCalibration();

/// \returns \p AccumSeconds with the apparent per-call overhead of
/// \p TimedCalls timing pairs subtracted, clamped at zero.
double correctedPhaseSeconds(double AccumSeconds, std::uint64_t TimedCalls);

/// \returns \p TotalSeconds with the wall cost of \p TimedCalls timing
/// pairs subtracted, clamped at zero.
double correctedTotalSeconds(double TotalSeconds, std::uint64_t TimedCalls);

} // namespace offchip

#endif // OFFCHIP_SUPPORT_HOSTCLOCK_H
