//===- support/Format.h - Text formatting helpers --------------*- C++ -*-===//
///
/// \file
/// String formatting used by benches, examples and error paths. Library code
/// returns std::string; only tools print.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_FORMAT_H
#define OFFCHIP_SUPPORT_FORMAT_H

#include <string>

namespace offchip {

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \returns \p Fraction rendered as a percentage with one decimal, e.g.
/// formatPercent(0.205) == "20.5%".
std::string formatPercent(double Fraction);

/// Pads \p S on the right with spaces to at least \p Width columns.
std::string padRight(std::string S, unsigned Width);

/// Pads \p S on the left with spaces to at least \p Width columns.
std::string padLeft(std::string S, unsigned Width);

} // namespace offchip

#endif // OFFCHIP_SUPPORT_FORMAT_H
