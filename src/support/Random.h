//===- support/Random.h - Deterministic pseudo-random numbers --*- C++ -*-===//
///
/// \file
/// A SplitMix64 generator. Every stochastic piece of the reproduction
/// (workload index arrays, profiling samples) draws from one of these with a
/// fixed seed so that runs are bit-reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_SUPPORT_RANDOM_H
#define OFFCHIP_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace offchip {

/// SplitMix64: tiny, fast, and statistically adequate for workload synthesis.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t Seed = 0x9e3779b97f4a7c15ULL)
      : State(Seed) {}

  /// \returns the next 64 pseudo-random bits.
  std::uint64_t next() {
    std::uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// \returns a uniform value in [0, Bound). \p Bound must be non-zero.
  std::uint64_t nextBelow(std::uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0)");
    return next() % Bound;
  }

  /// \returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  std::uint64_t State;
};

} // namespace offchip

#endif // OFFCHIP_SUPPORT_RANDOM_H
