//===- support/Stats.cpp --------------------------------------------------===//

#include "support/Stats.h"

using namespace offchip;

void Accumulator::merge(const Accumulator &Other) {
  if (Other.Count == 0)
    return;
  if (Count == 0) {
    *this = Other;
    return;
  }
  Sum += Other.Sum;
  if (Other.Min < Min)
    Min = Other.Min;
  if (Other.Max > Max)
    Max = Other.Max;
  Count += Other.Count;
}

void IntHistogram::addSample(std::uint64_t Value) {
  unsigned B = Value >= MaxBucket ? MaxBucket - 1
                                  : static_cast<unsigned>(Value);
  if (B >= Buckets.size())
    Buckets.resize(B + 1, 0);
  ++Buckets[B];
  ++Total;
}

unsigned IntHistogram::maxNonEmptyBucket() const {
  for (unsigned B = static_cast<unsigned>(Buckets.size()); B > 0; --B)
    if (Buckets[B - 1] != 0)
      return B - 1;
  return 0;
}

double IntHistogram::cdfAt(unsigned B) const {
  if (Total == 0)
    return 1.0;
  std::uint64_t Below = 0;
  for (unsigned I = 0; I <= B && I < Buckets.size(); ++I)
    Below += Buckets[I];
  return static_cast<double>(Below) / static_cast<double>(Total);
}

double IntHistogram::mean() const {
  if (Total == 0)
    return 0.0;
  double Sum = 0.0;
  for (unsigned I = 0; I < Buckets.size(); ++I)
    Sum += static_cast<double>(I) * static_cast<double>(Buckets[I]);
  return Sum / static_cast<double>(Total);
}

void IntHistogram::reset() {
  Buckets.clear();
  Total = 0;
}
