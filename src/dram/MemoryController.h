//===- dram/MemoryController.h - Banked DRAM + MC model ---------*- C++ -*-===//
///
/// \file
/// A memory controller with banked DRAM behind it. Requests are serviced
/// per-bank in arrival order with an open-row (row-buffer) policy: row hits
/// cost tCAS-class latency, row conflicts pay precharge + activate + CAS.
/// This approximates FR-FCFS [16]: with blocking cores the per-bank queue is
/// shallow and the dominant FR-FCFS effect — cheap row-buffer hits for
/// spatially local streams — is captured by the open-row state.
///
/// Queue latency (the paper's third latency class) is the wait between a
/// request's arrival at the MC and the start of its bank service; bank
/// queue utilization (Figure 18) is derived from total wait via Little's
/// law.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_DRAM_MEMORYCONTROLLER_H
#define OFFCHIP_DRAM_MEMORYCONTROLLER_H

#include "support/Pow2.h"
#include "support/Stats.h"

#include <cstdint>
#include <vector>

namespace offchip {

class TraceSink;

/// DRAM device timing in core cycles (DDR3-1600-class, Table 1).
struct DramTiming {
  /// Row-buffer hit: CAS + burst (DDR3-1600 tCL ~ 14 ns at 2 GHz cores).
  unsigned RowHitCycles = 28;
  /// Row conflict: precharge + activate + CAS + burst (tRP+tRCD+tCL).
  unsigned RowMissCycles = 82;
  /// Extra bank cycles per additional line of a coalesced burst (the
  /// leading line pays the full RowHit/RowMiss cost, each follower streams
  /// out of the open row at beat rate). Only used by accessBurst().
  unsigned BurstBeatCycles = 8;
};

struct DramConfig {
  /// Independent banks behind this controller (Table 1: 4 banks/device).
  unsigned Banks = 4;
  /// Row buffer size (Table 1: 4 KB, same as the page size).
  unsigned RowBufferBytes = 4096;
  /// FR-FCFS reordering window, in rows: a request counts as a row hit if
  /// its row is among this many most-recently-served rows of the bank.
  /// FR-FCFS pulls same-row requests out of the queue ahead of conflicting
  /// ones, so requests interleaved with a few other row streams still enjoy
  /// row-buffer locality; a strict-FCFS model would thrash the row on every
  /// thread interleave and erase exactly the queue-latency effect the paper
  /// measures.
  unsigned FrFcfsWindowRows = 8;
  DramTiming Timing;
};

/// Outcome of one DRAM access.
struct DramAccessResult {
  /// Cycle the data is ready at the controller.
  std::uint64_t CompleteTime = 0;
  /// Cycles spent waiting for the bank (the queue latency).
  std::uint64_t QueueCycles = 0;
  /// Bank service cycles (row hit or miss cost).
  std::uint64_t ServiceCycles = 0;
  bool RowHit = false;
};

/// One memory controller.
class MemoryController {
public:
  MemoryController(unsigned Id, DramConfig Config);

  unsigned id() const { return Id; }
  const DramConfig &config() const { return Config; }

  /// Services the access to \p PhysAddr arriving at \p Time, advancing bank
  /// state.
  DramAccessResult access(std::uint64_t PhysAddr, std::uint64_t Time);

  /// Services a coalesced burst of \p NumAddrs line addresses (ascending,
  /// same controller) arriving at \p Time as ONE wide transaction on the
  /// leading line's bank: the leader pays the ordinary row-hit/row-miss
  /// cost, every follower adds Timing.BurstBeatCycles while it stays in the
  /// leader's row and the full row cost on a row change. Counts one entry
  /// in accesses() (it is one transaction) and NumAddrs lines in
  /// linesTransferred(); emits one MCEnqueue/BankService pair. \p NumAddrs
  /// == 1 behaves exactly like access().
  DramAccessResult accessBurst(const std::uint64_t *Addrs,
                               unsigned NumAddrs, std::uint64_t Time);

  /// Contention-free service (optimal scheme of Section 2): zero queue
  /// latency, but the row-buffer behaviour stays realistic (tracked on a
  /// shadow bank state so the optimal run pays hit/conflict service times
  /// without waiting).
  DramAccessResult accessIdeal(std::uint64_t PhysAddr, std::uint64_t Time);

  /// Fire-and-forget writeback: occupies the bank without a waiting
  /// requester.
  void writeback(std::uint64_t PhysAddr, std::uint64_t Time);

  std::uint64_t accesses() const { return Accesses; }
  std::uint64_t rowHits() const { return RowHits; }
  /// L2 lines moved over this controller's channel: access()/accessIdeal()
  /// add 1, accessBurst() adds its line count. Writebacks are not counted
  /// (matching SimResult::NodeToMCTraffic, which counts requests only).
  std::uint64_t linesTransferred() const { return LinesTransferred; }
  std::uint64_t totalQueueCycles() const { return TotalQueueCycles; }
  std::uint64_t totalServiceCycles() const { return TotalServiceCycles; }

  /// Starts accumulating wall-clock time spent in access()/accessIdeal()/
  /// writeback() (SimResult::PhaseTimes). Off by default: measuring reads
  /// the clock twice per request.
  void enableCallTiming() { TimeCalls = true; }

  /// Wall-clock seconds spent servicing requests; zero unless
  /// enableCallTiming() was called. Raw accumulation — the caller subtracts
  /// the calibrated clock-read overhead (support/HostClock.h) using
  /// timedCalls().
  double timedSeconds() const { return TimedSeconds; }

  /// Number of requests that were wrapped in clock reads.
  std::uint64_t timedCalls() const { return TimedCalls; }

  /// Mean number of requests waiting in the bank queues over [0, Now), via
  /// Little's law (total wait cycles / elapsed cycles). Figure 18's
  /// bank-queue occupancy metric.
  double averageQueueOccupancy(std::uint64_t Now) const;

  /// Fraction of [0, Now) during which at least this controller's busiest
  /// bank was busy; a utilization proxy.
  double bankUtilization(std::uint64_t Now) const;

  /// Attaches the tracing sink. When set and a shared trace context is
  /// open, access()/accessIdeal() emit one MCEnqueue (Aux = MC id, Dur =
  /// queue-wait cycles) and one BankService (Aux = (MC id << 16) |
  /// (bank << 1) | row-hit, Dur = service cycles) event. writeback() stays
  /// silent so the traced request counts match SimResult::NodeToMCTraffic.
  void setTraceSink(TraceSink *S) { Sink = S; }

  void reset();

private:
  struct Bank {
    std::uint64_t BusyUntil = 0;
    /// Most-recently-served rows, front = newest (FR-FCFS window).
    std::vector<std::int64_t> RecentRows;
    std::uint64_t BusyCycles = 0;
  };

  /// True (and refreshed) when \p Row is within the bank's FR-FCFS window.
  bool isRowHit(Bank &B, std::int64_t Row) const;

  /// XOR-folded bank index. A plain modulo would lock whole physical
  /// regions to one bank whenever the allocator hands out addresses with a
  /// fixed row residue (e.g. page-interleaved PPNs are congruent to the MC
  /// id); real controllers fold higher address bits into the bank bits for
  /// exactly this reason.
  unsigned bankOf(std::uint64_t PhysAddr) const {
    std::uint64_t Row = RowDiv.div(PhysAddr);
    std::uint64_t Div1 = BankDiv.div(Row);
    std::uint64_t H = Row ^ Div1 ^ BankDiv.div(Div1);
    return static_cast<unsigned>(BankDiv.mod(H));
  }
  std::int64_t rowOf(std::uint64_t PhysAddr) const {
    return static_cast<std::int64_t>(BankDiv.div(RowDiv.div(PhysAddr)));
  }

  unsigned Id;
  DramConfig Config;
  /// Shift/mask decode of RowBufferBytes / Banks (generic fallback for
  /// non-power-of-two values).
  Pow2Divider RowDiv;
  Pow2Divider BankDiv;
  std::vector<Bank> Banks;
  /// Row-state shadow used by accessIdeal().
  std::vector<Bank> IdealBanks;
  std::uint64_t Accesses = 0;
  std::uint64_t RowHits = 0;
  std::uint64_t LinesTransferred = 0;
  std::uint64_t TotalQueueCycles = 0;
  std::uint64_t TotalServiceCycles = 0;
  bool TimeCalls = false;
  double TimedSeconds = 0.0;
  std::uint64_t TimedCalls = 0;
  TraceSink *Sink = nullptr;
};

} // namespace offchip

#endif // OFFCHIP_DRAM_MEMORYCONTROLLER_H
