//===- dram/MemoryController.cpp ------------------------------------------===//

#include "dram/MemoryController.h"

#include "trace/TraceSink.h"

#include <algorithm>
#include <chrono>

using namespace offchip;

namespace {

/// RAII accumulator for the opt-in per-call wall-clock timing. Counts the
/// timed calls alongside the seconds so the reader can subtract the
/// calibrated clock-read overhead (support/HostClock.h).
class ScopedTimer {
public:
  ScopedTimer(bool Enabled, double &Accum, std::uint64_t &Calls)
      : Accum(Enabled ? &Accum : nullptr), Calls(&Calls) {
    if (this->Accum)
      T0 = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (Accum) {
      *Accum += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
      ++*Calls;
    }
  }

private:
  double *Accum;
  std::uint64_t *Calls;
  std::chrono::steady_clock::time_point T0;
};

} // namespace

MemoryController::MemoryController(unsigned Id, DramConfig Config)
    : Id(Id), Config(Config), RowDiv(Config.RowBufferBytes),
      BankDiv(Config.Banks), Banks(Config.Banks), IdealBanks(Config.Banks) {}

bool MemoryController::isRowHit(Bank &B, std::int64_t Row) const {
  for (std::size_t I = 0; I < B.RecentRows.size(); ++I) {
    if (B.RecentRows[I] != Row)
      continue;
    // Refresh recency.
    B.RecentRows.erase(B.RecentRows.begin() + static_cast<std::ptrdiff_t>(I));
    B.RecentRows.insert(B.RecentRows.begin(), Row);
    return true;
  }
  B.RecentRows.insert(B.RecentRows.begin(), Row);
  if (B.RecentRows.size() > Config.FrFcfsWindowRows)
    B.RecentRows.pop_back();
  return false;
}

DramAccessResult MemoryController::access(std::uint64_t PhysAddr,
                                          std::uint64_t Time) {
  ScopedTimer Timer(TimeCalls, TimedSeconds, TimedCalls);
  unsigned BankIdx = bankOf(PhysAddr);
  Bank &B = Banks[BankIdx];
  std::int64_t Row = rowOf(PhysAddr);

  std::uint64_t Start = std::max(Time, B.BusyUntil);
  bool Hit = isRowHit(B, Row);
  std::uint64_t Service =
      Hit ? Config.Timing.RowHitCycles : Config.Timing.RowMissCycles;

  DramAccessResult R;
  R.QueueCycles = Start - Time;
  R.ServiceCycles = Service;
  R.CompleteTime = Start + Service;
  R.RowHit = Hit;

  B.BusyUntil = R.CompleteTime;
  B.BusyCycles += Service;

  ++Accesses;
  ++LinesTransferred;
  if (Hit)
    ++RowHits;
  TotalQueueCycles += R.QueueCycles;
  TotalServiceCycles += Service;
  if (Sink && Sink->sharedActive()) {
    Sink->emitShared(TraceKind::MCEnqueue, Time,
                     static_cast<std::uint32_t>(R.QueueCycles), PhysAddr, Id);
    Sink->emitShared(TraceKind::BankService, Start,
                     static_cast<std::uint32_t>(Service), PhysAddr,
                     (Id << 16) | (BankIdx << 1) | (Hit ? 1u : 0u));
  }
  return R;
}

DramAccessResult MemoryController::accessBurst(const std::uint64_t *Addrs,
                                               unsigned NumAddrs,
                                               std::uint64_t Time) {
  ScopedTimer Timer(TimeCalls, TimedSeconds, TimedCalls);
  unsigned BankIdx = bankOf(Addrs[0]);
  Bank &B = Banks[BankIdx];

  std::uint64_t Start = std::max(Time, B.BusyUntil);
  bool Hit = isRowHit(B, rowOf(Addrs[0]));
  std::uint64_t Service =
      Hit ? Config.Timing.RowHitCycles : Config.Timing.RowMissCycles;
  // Followers stream out of the open row at beat rate; a row change inside
  // the burst (possible when a run straddles a row-buffer boundary) pays
  // the full activation cost again and opens the new row.
  std::int64_t OpenRow = rowOf(Addrs[0]);
  for (unsigned I = 1; I < NumAddrs; ++I) {
    std::int64_t Row = rowOf(Addrs[I]);
    if (Row == OpenRow) {
      Service += Config.Timing.BurstBeatCycles;
    } else {
      Service += isRowHit(B, Row) ? Config.Timing.RowHitCycles
                                  : Config.Timing.RowMissCycles;
      OpenRow = Row;
    }
  }

  DramAccessResult R;
  R.QueueCycles = Start - Time;
  R.ServiceCycles = Service;
  R.CompleteTime = Start + Service;
  R.RowHit = Hit;

  B.BusyUntil = R.CompleteTime;
  B.BusyCycles += Service;

  ++Accesses; // one transaction, however wide
  LinesTransferred += NumAddrs;
  if (Hit)
    ++RowHits;
  TotalQueueCycles += R.QueueCycles;
  TotalServiceCycles += Service;
  if (Sink && Sink->sharedActive()) {
    Sink->emitShared(TraceKind::MCEnqueue, Time,
                     static_cast<std::uint32_t>(R.QueueCycles), Addrs[0], Id);
    Sink->emitShared(TraceKind::BankService, Start,
                     static_cast<std::uint32_t>(Service), Addrs[0],
                     (Id << 16) | (BankIdx << 1) | (Hit ? 1u : 0u));
  }
  return R;
}

DramAccessResult MemoryController::accessIdeal(std::uint64_t PhysAddr,
                                               std::uint64_t Time) {
  ScopedTimer Timer(TimeCalls, TimedSeconds, TimedCalls);
  unsigned BankIdx = bankOf(PhysAddr);
  Bank &B = IdealBanks[BankIdx];
  bool Hit = isRowHit(B, rowOf(PhysAddr));
  DramAccessResult R;
  R.QueueCycles = 0;
  R.ServiceCycles =
      Hit ? Config.Timing.RowHitCycles : Config.Timing.RowMissCycles;
  R.CompleteTime = Time + R.ServiceCycles;
  R.RowHit = Hit;
  ++Accesses;
  ++LinesTransferred;
  if (Hit)
    ++RowHits;
  TotalServiceCycles += R.ServiceCycles;
  if (Sink && Sink->sharedActive()) {
    Sink->emitShared(TraceKind::MCEnqueue, Time, 0, PhysAddr, Id);
    Sink->emitShared(TraceKind::BankService, Time,
                     static_cast<std::uint32_t>(R.ServiceCycles), PhysAddr,
                     (Id << 16) | (BankIdx << 1) | (Hit ? 1u : 0u));
  }
  return R;
}

void MemoryController::writeback(std::uint64_t PhysAddr, std::uint64_t Time) {
  // A writeback occupies the bank like a read but nothing waits for it, so
  // it contributes to contention without queue-latency accounting.
  ScopedTimer Timer(TimeCalls, TimedSeconds, TimedCalls);
  Bank &B = Banks[bankOf(PhysAddr)];
  std::int64_t Row = rowOf(PhysAddr);
  std::uint64_t Start = std::max(Time, B.BusyUntil);
  bool Hit = isRowHit(B, Row);
  std::uint64_t Service =
      Hit ? Config.Timing.RowHitCycles : Config.Timing.RowMissCycles;
  B.BusyUntil = Start + Service;
  B.BusyCycles += Service;
}

double MemoryController::averageQueueOccupancy(std::uint64_t Now) const {
  if (Now == 0)
    return 0.0;
  return static_cast<double>(TotalQueueCycles) / static_cast<double>(Now);
}

double MemoryController::bankUtilization(std::uint64_t Now) const {
  if (Now == 0 || Banks.empty())
    return 0.0;
  std::uint64_t Busy = 0;
  for (const Bank &B : Banks)
    Busy = std::max(Busy, B.BusyCycles);
  return std::min(1.0, static_cast<double>(Busy) / static_cast<double>(Now));
}

void MemoryController::reset() {
  for (Bank &B : Banks)
    B = Bank();
  for (Bank &B : IdealBanks)
    B = Bank();
  Accesses = 0;
  RowHits = 0;
  LinesTransferred = 0;
  TotalQueueCycles = 0;
  TotalServiceCycles = 0;
  TimedSeconds = 0.0;
  TimedCalls = 0;
}
