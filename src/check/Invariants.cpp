//===- check/Invariants.cpp -----------------------------------------------===//

#include "check/Invariants.h"

#include "cache/Cache.h"
#include "cache/Directory.h"

using namespace offchip;

std::vector<std::string>
RequestLedger::verify(std::uint64_t TotalAccesses) const {
  std::vector<std::string> Out;
  std::uint64_t Issued = 0, Retired = 0;
  for (unsigned T = 0; T < Slots.size(); ++T) {
    const Slot &S = Slots[T];
    Issued += S.Issued;
    Retired += S.Retired;
    std::string Who = "thread " + std::to_string(T);
    if (S.DoubleIssue)
      Out.push_back(Who + ": issued an access while one was in flight");
    if (S.StrayRetire)
      Out.push_back(Who + ": retired an access that was never issued");
    if (S.KeyMismatch)
      Out.push_back(Who + ": retired under a different key than issued");
    if (S.OrderViolation)
      Out.push_back(Who + ": event keys went backwards");
    if (S.InFlight)
      Out.push_back(Who + ": access still in flight at run end (issued " +
                    std::to_string(S.Issued) + ", retired " +
                    std::to_string(S.Retired) + ")");
    else if (S.Issued != S.Retired)
      Out.push_back(Who + ": issued " + std::to_string(S.Issued) +
                    " accesses but retired " + std::to_string(S.Retired));
  }
  if (Issued != TotalAccesses)
    Out.push_back("ledger issued " + std::to_string(Issued) +
                  " accesses but the run counted " +
                  std::to_string(TotalAccesses));
  if (Issued != Retired)
    Out.push_back("ledger issued " + std::to_string(Issued) +
                  " accesses but retired " + std::to_string(Retired));
  return Out;
}

std::vector<std::string> CoherenceLedger::verify() const {
  std::vector<std::string> Out;
  for (unsigned Node = 0; Node < InvSent.size(); ++Node)
    if (InvSent[Node] != AckReceived[Node])
      Out.push_back("node " + std::to_string(Node) + " was sent " +
                    std::to_string(InvSent[Node]) +
                    " invalidations but acked " +
                    std::to_string(AckReceived[Node]) +
                    " (an invalidated copy was not actually resident)");
  return Out;
}

void offchip::checkCoherenceStates(const Directory &Dir,
                                   const std::vector<Cache> &L2s,
                                   std::vector<std::string> &Out) {
  constexpr std::size_t MaxReports = 8;
  std::size_t Mismatches = 0;
  auto Report = [&](const std::string &Msg) {
    if (Mismatches++ < MaxReports)
      Out.push_back(Msg);
  };
  Dir.forEachLine([&](std::uint64_t Line, std::uint64_t Mask) {
    int Owner = Dir.exclusiveOwner(Line);
    if (Owner >= 0) {
      if (Mask != (1ull << static_cast<unsigned>(Owner))) {
        Report("line " + std::to_string(Line) + " has exclusive owner " +
               std::to_string(Owner) + " but sharer mask " +
               std::to_string(Mask));
        return;
      }
      int St = L2s[static_cast<unsigned>(Owner)].stateOf(Line);
      if (St != static_cast<int>(LineState::Exclusive) &&
          St != static_cast<int>(LineState::Modified))
        Report("line " + std::to_string(Line) + " owner " +
               std::to_string(Owner) + " holds it in state " +
               std::to_string(St) + ", not Exclusive/Modified");
      return;
    }
    for (unsigned Node = 0; Node < L2s.size(); ++Node) {
      if ((Mask & (1ull << Node)) == 0)
        continue;
      int St = L2s[Node].stateOf(Line);
      if (St != static_cast<int>(LineState::Shared))
        Report("line " + std::to_string(Line) + " has no exclusive owner " +
               "but node " + std::to_string(Node) + " holds it in state " +
               std::to_string(St));
    }
  });
  if (Mismatches > MaxReports)
    Out.push_back("... and " + std::to_string(Mismatches - MaxReports) +
                  " more protocol-state mismatches");
}

void offchip::checkDirectoryAgainstL2s(const Directory &Dir,
                                       const std::vector<Cache> &L2s,
                                       std::vector<std::string> &Out) {
  // Cap the per-direction reports: one aliasing bug corrupts thousands of
  // lines and the first few mismatches carry all the signal.
  constexpr std::size_t MaxReports = 8;

  std::size_t Mismatches = 0;
  Dir.forEachLine([&](std::uint64_t Line, std::uint64_t Mask) {
    for (unsigned Node = 0; Node < L2s.size(); ++Node) {
      if ((Mask & (1ull << Node)) == 0)
        continue;
      if (L2s[Node].contains(Line))
        continue;
      if (Mismatches++ < MaxReports)
        Out.push_back("directory lists node " + std::to_string(Node) +
                      " as sharer of line " + std::to_string(Line) +
                      " but its L2 does not hold it");
    }
  });
  if (Mismatches > MaxReports)
    Out.push_back("... and " + std::to_string(Mismatches - MaxReports) +
                  " more directory->L2 mismatches");

  Mismatches = 0;
  for (unsigned Node = 0; Node < L2s.size(); ++Node) {
    L2s[Node].forEachLine([&](std::uint64_t Line) {
      if (Dir.hasSharer(Line, Node))
        return;
      if (Mismatches++ < MaxReports)
        Out.push_back("node " + std::to_string(Node) + " L2 holds line " +
                      std::to_string(Line) +
                      " but the directory does not track it");
    });
  }
  if (Mismatches > MaxReports)
    Out.push_back("... and " + std::to_string(Mismatches - MaxReports) +
                  " more L2->directory mismatches");
}

void offchip::checkMcConservation(
    const std::vector<std::uint64_t> &PerMCAccesses,
    const std::vector<std::uint64_t> &NodeToMCTraffic, unsigned NumNodes,
    unsigned NumMCs, std::uint64_t OffChipAccesses,
    std::vector<std::string> &Out) {
  if (PerMCAccesses.size() != NumMCs ||
      NodeToMCTraffic.size() !=
          static_cast<std::size_t>(NumNodes) * NumMCs) {
    Out.push_back("traffic tables are mis-sized for " +
                  std::to_string(NumNodes) + " nodes x " +
                  std::to_string(NumMCs) + " MCs");
    return;
  }
  std::uint64_t Grand = 0;
  for (unsigned MC = 0; MC < NumMCs; ++MC) {
    std::uint64_t Column = 0;
    for (unsigned Node = 0; Node < NumNodes; ++Node)
      Column += NodeToMCTraffic[static_cast<std::size_t>(Node) * NumMCs + MC];
    Grand += Column;
    if (Column != PerMCAccesses[MC])
      Out.push_back("MC " + std::to_string(MC) + " serviced " +
                    std::to_string(PerMCAccesses[MC]) +
                    " accesses but the traffic table records " +
                    std::to_string(Column));
  }
  if (Grand != OffChipAccesses)
    Out.push_back("traffic table totals " + std::to_string(Grand) +
                  " off-chip requests but the run counted " +
                  std::to_string(OffChipAccesses));
}

void offchip::checkBurstConservation(
    const std::vector<std::uint64_t> &PerMCLines,
    std::uint64_t OffChipAccesses, std::uint64_t BurstTransactions,
    std::uint64_t BurstLines, std::vector<std::string> &Out) {
  if (BurstTransactions > OffChipAccesses) {
    Out.push_back("more burst transactions (" +
                  std::to_string(BurstTransactions) +
                  ") than off-chip accesses (" +
                  std::to_string(OffChipAccesses) + ")");
    return;
  }
  // Every burst moves at least two lines (a run of one is serviced as a
  // plain access and never counted).
  if (BurstLines < 2 * BurstTransactions) {
    Out.push_back("burst transactions (" + std::to_string(BurstTransactions) +
                  ") moved only " + std::to_string(BurstLines) +
                  " lines; every burst must coalesce at least two");
    return;
  }
  std::uint64_t TotalLines = 0;
  for (std::uint64_t Lines : PerMCLines)
    TotalLines += Lines;
  std::uint64_t Want = OffChipAccesses - BurstTransactions + BurstLines;
  if (TotalLines != Want)
    Out.push_back("MCs transferred " + std::to_string(TotalLines) +
                  " lines but conservation expects " + std::to_string(Want) +
                  " (off-chip " + std::to_string(OffChipAccesses) +
                  " - bursts " + std::to_string(BurstTransactions) +
                  " + burst lines " + std::to_string(BurstLines) + ")");
}
