//===- check/Invariants.h - Runtime simulation invariant checks -*- C++ -*-===//
///
/// \file
/// Structural invariants of a simulation run, verified at run end when
/// MachineConfig::CheckInvariants is set (and by the differential fuzzer,
/// tools/offchip-fuzz, on every trial):
///
///  - RequestLedger: every access the engine issues retires exactly once,
///    each thread has at most one access in flight, and a thread's event
///    keys never go backwards. Both engine loops feed the same ledger, so
///    a merger that drops, duplicates or reorders a shipped event is caught
///    even when the aggregate counters happen to balance.
///  - Directory/L2 consistency (checkDirectoryAgainstL2s): the sharer set
///    the directory tracks for a line matches the private L2s that actually
///    hold it, in both directions.
///  - MC traffic conservation (checkMcConservation): each controller's
///    serviced-access count equals its column sum of the per-(node, MC)
///    traffic table, and the table's total equals the run's off-chip access
///    count (writebacks are deliberately outside both, see
///    MemoryController::writeback).
///
/// All checks are read-only and report violations as strings; the caller
/// decides whether to abort. Nothing here ever changes simulation results.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_CHECK_INVARIANTS_H
#define OFFCHIP_CHECK_INVARIANTS_H

#include <cstdint>
#include <string>
#include <vector>

namespace offchip {

class Cache;
class Directory;

/// Issue/retire accounting for every access the engine processes.
///
/// Thread safety: one slot per simulated thread, padded to a cache line.
/// A slot is only ever touched by the worker that owns the thread's node
/// or — for a shipped access, while the node is stalled — by the merger;
/// the SPSC event/resume handoffs order those touches (release push /
/// acquire pop), so the fields need no atomics.
class RequestLedger {
public:
  explicit RequestLedger(unsigned NumThreads) : Slots(NumThreads) {}

  /// Thread \p Thread popped an access with event key \p Key.
  void issue(unsigned Thread, std::uint64_t Key) {
    Slot &S = Slots[Thread];
    if (S.InFlight)
      S.DoubleIssue = true;
    // Non-strict: with zero latencies and a zero compute gap a thread's
    // next key can legally equal its previous one.
    if (S.Issued != 0 && Key < S.LastKey)
      S.OrderViolation = true;
    S.LastKey = Key;
    S.InFlightKey = Key;
    S.InFlight = true;
    ++S.Issued;
  }

  /// The access issued under \p Key completed (its next event was
  /// scheduled).
  void retire(unsigned Thread, std::uint64_t Key) {
    Slot &S = Slots[Thread];
    if (!S.InFlight)
      S.StrayRetire = true;
    else if (S.InFlightKey != Key)
      S.KeyMismatch = true;
    S.InFlight = false;
    ++S.Retired;
  }

  /// End-of-run verification; call after both engine loops have joined.
  /// \p TotalAccesses is SimResult::TotalAccesses — every issued access is
  /// counted there exactly once, so the totals must agree. \returns one
  /// message per violated invariant (empty when clean).
  std::vector<std::string> verify(std::uint64_t TotalAccesses) const;

private:
  struct alignas(64) Slot {
    std::uint64_t Issued = 0;
    std::uint64_t Retired = 0;
    std::uint64_t LastKey = 0;
    std::uint64_t InFlightKey = 0;
    bool InFlight = false;
    bool DoubleIssue = false;
    bool StrayRetire = false;
    bool KeyMismatch = false;
    bool OrderViolation = false;
  };
  std::vector<Slot> Slots;
};

/// Invalidation/ack pairing ledger of the coherence protocol
/// (MachineConfig::Coherence). The machine records one invSent when it
/// injects an invalidation toward a node and one ackReceived when that
/// node's copy was actually found and dropped — so a directory entry that
/// names a node whose L2 never held the line shows up as an unacked
/// invalidation. Single-threaded by construction: all coherence actions run
/// in merged event order (serial loop or merger thread).
class CoherenceLedger {
public:
  explicit CoherenceLedger(unsigned NumNodes)
      : InvSent(NumNodes, 0), AckReceived(NumNodes, 0) {}

  void invSent(unsigned Node) { ++InvSent[Node]; }
  void ackReceived(unsigned Node) { ++AckReceived[Node]; }

  /// \returns one message per node whose invalidations and acks disagree.
  std::vector<std::string> verify() const;

private:
  std::vector<std::uint64_t> InvSent;
  std::vector<std::uint64_t> AckReceived;
};

/// Cross-checks the directory's protocol bookkeeping against the L2 line
/// states (MachineConfig::Coherence): a line with an exclusive owner must
/// have exactly that owner as its only sharer and the owner's copy in state
/// Exclusive or Modified; a line without one must have every holder's copy
/// in state Shared. Appends one message per violation, capped.
void checkCoherenceStates(const Directory &Dir, const std::vector<Cache> &L2s,
                          std::vector<std::string> &Out);

/// Cross-checks the directory's sharer sets against the private L2 contents
/// in both directions: every recorded sharer must hold the line, and every
/// resident L2 line must be tracked for that node. Only meaningful for
/// private-L2 machines (the SNUCA flow never consults the directory).
/// Appends one message per mismatch to \p Out, capped with an ellipsis.
void checkDirectoryAgainstL2s(const Directory &Dir,
                              const std::vector<Cache> &L2s,
                              std::vector<std::string> &Out);

/// Conservation of off-chip request accounting: for each MC, the accesses
/// it serviced (\p PerMCAccesses) must equal the column sum of the
/// row-major [node][mc] \p NodeToMCTraffic table, and the table's grand
/// total must equal \p OffChipAccesses. Appends violations to \p Out.
void checkMcConservation(const std::vector<std::uint64_t> &PerMCAccesses,
                         const std::vector<std::uint64_t> &NodeToMCTraffic,
                         unsigned NumNodes, unsigned NumMCs,
                         std::uint64_t OffChipAccesses,
                         std::vector<std::string> &Out);

/// Conservation of line-level DRAM traffic under burst coalescing: every
/// off-chip access transfers exactly one line except burst transactions,
/// which transfer \p BurstLines lines across \p BurstTransactions trigger
/// accesses, so sum(\p PerMCLines) == \p OffChipAccesses -
/// \p BurstTransactions + \p BurstLines. With the coalescer off both burst
/// counters are zero and this degenerates to lines == accesses. Appends
/// violations to \p Out.
void checkBurstConservation(const std::vector<std::uint64_t> &PerMCLines,
                            std::uint64_t OffChipAccesses,
                            std::uint64_t BurstTransactions,
                            std::uint64_t BurstLines,
                            std::vector<std::string> &Out);

} // namespace offchip

#endif // OFFCHIP_CHECK_INVARIANTS_H
