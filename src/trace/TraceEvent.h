//===- trace/TraceEvent.h - Trace configuration and event record -*- C++ -*-===//
///
/// \file
/// The cycle-stamped binary event record the tracing subsystem collects and
/// the configuration block that turns it on (MachineConfig::Trace). One
/// TraceEvent is one lifecycle step of one simulated memory access: a cache
/// probe outcome, one NoC link hop, an MC enqueue, a bank service, a fill.
///
/// Ordering invariant: every event carries the packed (time << ThreadShift)
/// | thread key of the access that caused it, and all events of one access
/// are recorded into one per-node buffer in emission order. A stable sort of
/// the concatenated buffers by Key therefore yields one total order that is
/// identical between the serial engine and the parallel engine at any
/// --sim-threads value — the property the byte-identical trace.json tests
/// pin.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_TRACE_TRACEEVENT_H
#define OFFCHIP_TRACE_TRACEEVENT_H

#include <cstdint>
#include <string>
#include <vector>

namespace offchip {

/// What happened. Values are stable across exports (they appear in the
/// binary record and as names in trace.json).
enum class TraceKind : std::uint8_t {
  L1Hit = 0,      ///< L1 probe hit; Dur = L1 latency.
  L1Miss,         ///< L1 probe miss; Dur = L1 latency.
  L2Hit,          ///< L2 probe hit (local slice or shared home bank; Aux =
                  ///< probed node).
  L2Miss,         ///< L2 probe miss (Aux = probed node).
  DirLookup,      ///< Directory tag walk at the owning MC's node (Aux).
  RemoteL2Hit,    ///< Forwarded to a sharing L2 (Aux = sharer node).
  NocHop,         ///< One link traversal; Aux = directed link id
                  ///< (node * 4 + direction), Dur = flits serialized.
  MCEnqueue,      ///< Request arrival at the MC; Aux = MC id, Dur = queue
                  ///< wait cycles.
  BankService,    ///< Bank busy servicing; Aux = (MC id << 16) | (bank << 1)
                  ///< | row-hit, Dur = service cycles.
  L1Fill,         ///< Line filled into the requester's L1.
  Complete,       ///< Whole off-tile access span: Start = issue cycle, Dur =
                  ///< end-to-end latency.
  BurstCoalesce,  ///< A coalesced wide DRAM transaction (appended last:
                  ///< values are stable across exports); Aux = (MC id << 8)
                  ///< | line count, Dur = bank service cycles.
  WindowDrain,    ///< A parallel-engine worker flushed its event chunk to
                  ///< the merger (appended last, keeping prior values
                  ///< stable); Key/Start stamp the chunk's first event,
                  ///< Aux = (worker index << 16) | chunk size. Emitted only
                  ///< under TraceConfig::EngineEvents — it describes host
                  ///< execution, so it exists only at --sim-threads >= 2
                  ///< and would break the cross-engine byte-identity of
                  ///< default traces.
  Invalidate,     ///< Coherence invalidation delivered to a holder
                  ///< (appended last, keeping prior values stable);
                  ///< Aux = invalidated node, Addr = line PA.
  Downgrade,      ///< Exclusive/Modified holder demoted to Shared by a
                  ///< remote read; Aux = downgraded node, Addr = line PA.
  InvAck,         ///< Invalidation ack received at the directory; Aux =
                  ///< acking node, Addr = line PA.
};

/// Fixed-size binary event record (see the file comment for the ordering
/// contract).
struct TraceEvent {
  std::uint64_t Key = 0;   ///< Packed (time, thread) key of the owning access.
  std::uint64_t Start = 0; ///< Cycle the step begins.
  std::uint64_t Addr = 0;  ///< Address (VA on tile-local steps, PA beyond).
  std::uint32_t Dur = 0;   ///< Step duration in cycles (flits for NocHop).
  std::uint32_t Aux = 0;   ///< Kind-specific payload (link/MC/bank/node id).
  std::uint16_t Node = 0;  ///< Node that issued the owning access.
  TraceKind Kind = TraceKind::L1Hit;
};

/// Tracing knobs; MachineConfig::Trace. Default-constructed tracing is off
/// and costs one null-pointer test per instrumentation site.
struct TraceConfig {
  /// Master switch; everything below is ignored when false.
  bool Enabled = false;
  /// Write a Chrome/Perfetto trace.json here after the run (empty: keep the
  /// events in SimResult::Trace only).
  std::string ChromeOutPath;
  /// Write the compact time-series CSV (tools/trace-report input) here
  /// after the run (empty: keep in memory only).
  std::string SeriesOutPath;
  /// Bucket width, in cycles, of the derived link-utilization and MC
  /// queue-depth time series.
  unsigned SampleCycles = 4096;
  /// Ring capacity of each node's event buffer; when an access pushes a
  /// node past it the node's oldest events are dropped (newest are kept).
  /// Drops are deterministic — a pure function of the node's event
  /// sequence — so capped traces stay byte-identical across --sim-threads.
  std::uint64_t MaxEventsPerNode = 4096;
  /// Also record parallel-engine host-execution events (WindowDrain). Off
  /// by default because such events only exist at --sim-threads >= 2:
  /// enabling them forfeits the byte-identity of trace files across
  /// engines (simulated results are untouched either way).
  bool EngineEvents = false;
};

/// Everything an exporter needs, detached from the live simulation:
/// machine geometry, the sorted event list, and the always-complete
/// aggregate tables (which ignore the ring cap; see TraceSink).
struct TraceData {
  TraceConfig Config;
  unsigned NumNodes = 0;
  unsigned MeshX = 0;
  unsigned NumMCs = 0;
  unsigned ThreadShift = 0;
  std::vector<unsigned> MCNodes;
  /// All retained events, stably sorted by Key (serial event order).
  std::vector<TraceEvent> Events;
  /// Events emitted in total, including ones the rings dropped.
  std::uint64_t EmittedEvents = 0;
  std::uint64_t DroppedEvents = 0;

  /// Per-link busy cycles per SampleCycles bucket; Links[l] may be shorter
  /// than the longest series (trailing zeros are not stored).
  std::vector<std::vector<std::uint64_t>> LinkBusyPerBucket;
  /// Per-MC, per-bucket: requests enqueued and total queue-wait cycles.
  struct McSample {
    std::uint64_t Enqueued = 0;
    std::uint64_t WaitCycles = 0;
  };
  std::vector<std::vector<McSample>> McQueuePerBucket;
  /// Row-major [node][mc] off-chip request counts (the Figure 13 map,
  /// re-derived from the trace so reports can cross-check SimResult).
  std::vector<std::uint64_t> NodeToMCRequests;

  std::uint64_t requestsAt(unsigned Node, unsigned MC) const {
    return NodeToMCRequests[static_cast<std::size_t>(Node) * NumMCs + MC];
  }
};

} // namespace offchip

#endif // OFFCHIP_TRACE_TRACEEVENT_H
