//===- trace/TraceSink.h - Low-overhead event collection --------*- C++ -*-===//
///
/// \file
/// Collects TraceEvents during a simulation with near-zero cost when
/// disabled (every instrumentation site is guarded by one pointer test) and
/// no locking when enabled.
///
/// Thread-safety contract (matches the engines' ownership protocol):
///
///  - emit(Node, ...) may only be called by the host thread currently
///    advancing that node: a shard worker while the node is not stalled, or
///    the serial loop. Each node's buffer is single-writer at any instant.
///  - beginShared/emitShared/endShared may only be called by the thread
///    that owns shared machine state: the merger in the parallel engine,
///    the (only) thread in the serial engine. emitShared appends to the
///    buffer of the node named by beginShared; the parallel engine's SPSC
///    handoff orders those appends against the owning worker's.
///  - The aggregate tables (link busy, MC queue, node->MC traffic) are
///    updated only from emitShared — i.e. only ever by one thread.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_TRACE_TRACESINK_H
#define OFFCHIP_TRACE_TRACESINK_H

#include "trace/TraceEvent.h"

#include <cassert>

namespace offchip {

class TraceSink {
public:
  /// \p MeshX / \p NumMCs / \p MCNodes describe the machine for the
  /// exporters; NumNodes sizes the per-node buffers.
  TraceSink(const TraceConfig &Config, unsigned NumNodes, unsigned MeshX,
            unsigned NumMCs, std::vector<unsigned> MCNodes);

  //===--------------------------------------------------------------------===//
  // Node-local emission (worker side)
  //===--------------------------------------------------------------------===//

  void emit(unsigned Node, std::uint64_t Key, TraceKind Kind,
            std::uint64_t Start, std::uint32_t Dur, std::uint64_t Addr,
            std::uint32_t Aux) {
    push(Node, {Key, Start, Addr, Dur, Aux, static_cast<std::uint16_t>(Node),
                Kind});
  }

  //===--------------------------------------------------------------------===//
  // Shared-state emission (merger side)
  //===--------------------------------------------------------------------===//

  /// Opens the per-request context: subsequent emitShared calls are stamped
  /// with \p Key and appended to \p Node's buffer. Instrumented substrates
  /// (Network, MemoryController) emit through this context so they need no
  /// knowledge of engine keys.
  void beginShared(unsigned Node, std::uint64_t Key) {
    assert(!CtxActive && "nested shared trace contexts");
    CtxActive = true;
    CtxNode = Node;
    CtxKey = Key;
  }

  void endShared() { CtxActive = false; }

  /// True between beginShared and endShared; substrates use this to skip
  /// emission for un-attributed calls (e.g. direct Machine::access users).
  bool sharedActive() const { return CtxActive; }

  void emitShared(TraceKind Kind, std::uint64_t Start, std::uint32_t Dur,
                  std::uint64_t Addr, std::uint32_t Aux);

  //===--------------------------------------------------------------------===//
  // Extraction
  //===--------------------------------------------------------------------===//

  /// Moves everything collected into an exportable TraceData: buffers are
  /// unwound in node order and stably sorted by Key, which reproduces the
  /// serial event order regardless of the engine that ran (see
  /// TraceEvent.h). Call once, after the simulation has joined.
  TraceData take(unsigned ThreadShift);

  /// Totals across all node rings. Only meaningful once the engines have
  /// joined (per-ring tallies are written by their owning threads).
  std::uint64_t emitted() const;
  std::uint64_t dropped() const;

private:
  /// One node's ring: Events[(First + i) % capacity] for i < Count. The
  /// emitted/dropped tallies live per ring (not on the sink) so concurrent
  /// workers never share a counter; take() sums them.
  struct NodeRing {
    std::vector<TraceEvent> Events;
    std::size_t First = 0;
    std::size_t Count = 0;
    std::uint64_t Emitted = 0;
    std::uint64_t Dropped = 0;
  };

  void push(unsigned Node, const TraceEvent &E);

  TraceConfig Config;
  unsigned MeshX;
  unsigned NumMCs;
  std::vector<unsigned> MCNodes;
  std::vector<NodeRing> Rings;

  bool CtxActive = false;
  unsigned CtxNode = 0;
  std::uint64_t CtxKey = 0;

  // Aggregate tables (merger-side only; never ring-capped).
  std::vector<std::vector<std::uint64_t>> LinkBusyPerBucket;
  std::vector<std::vector<TraceData::McSample>> McQueuePerBucket;
  std::vector<std::uint64_t> NodeToMCRequests;
};

} // namespace offchip

#endif // OFFCHIP_TRACE_TRACESINK_H
