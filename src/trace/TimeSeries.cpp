//===- trace/TimeSeries.cpp -----------------------------------------------===//

#include "trace/TimeSeries.h"

#include "support/Format.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

using namespace offchip;

namespace {

unsigned manhattan(const TraceData &D, unsigned Node, unsigned MC) {
  if (D.MeshX == 0 || MC >= D.MCNodes.size())
    return 0;
  unsigned Other = D.MCNodes[MC];
  int AX = static_cast<int>(Node % D.MeshX), AY = static_cast<int>(Node / D.MeshX);
  int BX = static_cast<int>(Other % D.MeshX), BY = static_cast<int>(Other / D.MeshX);
  return static_cast<unsigned>(std::abs(AX - BX) + std::abs(AY - BY));
}

/// Nearest-rank percentile of a sorted sample vector.
double percentileSorted(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  std::size_t N = Sorted.size();
  double Rank = P * static_cast<double>(N);
  std::size_t R = static_cast<std::size_t>(Rank);
  if (static_cast<double>(R) < Rank)
    ++R;
  if (R == 0)
    R = 1;
  if (R > N)
    R = N;
  return Sorted[R - 1];
}

} // namespace

std::string offchip::renderTimeSeriesCsv(const TraceData &D) {
  std::string Out;
  Out += "# offchip trace time-series dump (see trace/TimeSeries.h)\n";
  auto Meta = [&Out](const std::string &K, std::uint64_t V) {
    Out += "meta," + K + formatString(",%llu", (unsigned long long)V);
    Out += "\n";
  };
  Meta("num_nodes", D.NumNodes);
  Meta("mesh_x", D.MeshX);
  Meta("num_mcs", D.NumMCs);
  Meta("sample_cycles", D.Config.SampleCycles);
  Meta("emitted_events", D.EmittedEvents);
  Meta("dropped_events", D.DroppedEvents);
  for (unsigned M = 0; M < D.MCNodes.size(); ++M)
    Meta(formatString("mc_node%u", M), D.MCNodes[M]);

  for (unsigned L = 0; L < D.LinkBusyPerBucket.size(); ++L) {
    const std::vector<std::uint64_t> &Series = D.LinkBusyPerBucket[L];
    for (std::size_t B = 0; B < Series.size(); ++B)
      if (Series[B] != 0)
        Out += formatString("link,%llu,%u,%llu\n", (unsigned long long)B, L,
                            (unsigned long long)Series[B]);
  }
  for (unsigned M = 0; M < D.McQueuePerBucket.size(); ++M) {
    const std::vector<TraceData::McSample> &Series = D.McQueuePerBucket[M];
    for (std::size_t B = 0; B < Series.size(); ++B)
      if (Series[B].Enqueued != 0 || Series[B].WaitCycles != 0)
        Out += formatString("mcq,%llu,%u,%llu,%llu\n", (unsigned long long)B,
                            M, (unsigned long long)Series[B].Enqueued,
                            (unsigned long long)Series[B].WaitCycles);
  }
  for (unsigned N = 0; N < D.NumNodes; ++N)
    for (unsigned M = 0; M < D.NumMCs; ++M) {
      std::uint64_t Req = D.requestsAt(N, M);
      if (Req != 0)
        Out += formatString("traffic,%u,%u,%llu,%u\n", N, M,
                            (unsigned long long)Req, manhattan(D, N, M));
    }
  return Out;
}

bool offchip::writeTimeSeriesCsv(const TraceData &D, const std::string &Path) {
  std::ofstream Out(Path, std::ios::trunc | std::ios::binary);
  if (!Out)
    return false;
  Out << renderTimeSeriesCsv(D);
  return static_cast<bool>(Out);
}

bool offchip::parseTimeSeriesCsv(const std::string &Text, TraceData &D,
                                 std::string *Err) {
  D = TraceData();
  std::size_t LineNo = 0, Pos = 0;
  auto Fail = [&](const std::string &Why) {
    if (Err)
      *Err = formatString("time-series line %llu: ",
                          (unsigned long long)LineNo) +
             Why;
    return false;
  };
  while (Pos < Text.size()) {
    std::size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::vector<std::string> F;
    std::size_t Start = 0;
    while (true) {
      std::size_t C = Line.find(',', Start);
      if (C == std::string::npos) {
        F.push_back(Line.substr(Start));
        break;
      }
      F.push_back(Line.substr(Start, C - Start));
      Start = C + 1;
    }
    auto U64 = [](const std::string &S) {
      return std::strtoull(S.c_str(), nullptr, 10);
    };
    if (F[0] == "meta") {
      if (F.size() != 3)
        return Fail("meta needs key,value");
      std::uint64_t V = U64(F[2]);
      if (F[1] == "num_nodes")
        D.NumNodes = static_cast<unsigned>(V);
      else if (F[1] == "mesh_x")
        D.MeshX = static_cast<unsigned>(V);
      else if (F[1] == "num_mcs")
        D.NumMCs = static_cast<unsigned>(V);
      else if (F[1] == "sample_cycles")
        D.Config.SampleCycles = static_cast<unsigned>(V);
      else if (F[1] == "emitted_events")
        D.EmittedEvents = V;
      else if (F[1] == "dropped_events")
        D.DroppedEvents = V;
      else if (F[1].rfind("mc_node", 0) == 0) {
        unsigned Idx =
            static_cast<unsigned>(std::strtoul(F[1].c_str() + 7, nullptr, 10));
        if (D.MCNodes.size() <= Idx)
          D.MCNodes.resize(Idx + 1, 0);
        D.MCNodes[Idx] = static_cast<unsigned>(V);
      }
      // Unknown meta keys are ignored for forward compatibility.
      if (D.NumNodes != 0) {
        D.LinkBusyPerBucket.resize(static_cast<std::size_t>(D.NumNodes) * 4);
        D.NodeToMCRequests.assign(
            static_cast<std::size_t>(D.NumNodes) * std::max(1u, D.NumMCs), 0);
      }
      if (D.NumMCs != 0)
        D.McQueuePerBucket.resize(D.NumMCs);
      continue;
    }
    if (F[0] == "link") {
      if (F.size() != 4)
        return Fail("link needs bucket,link,busy");
      std::size_t B = U64(F[1]);
      unsigned L = static_cast<unsigned>(U64(F[2]));
      if (L >= D.LinkBusyPerBucket.size())
        return Fail("link id out of range (missing meta?)");
      if (D.LinkBusyPerBucket[L].size() <= B)
        D.LinkBusyPerBucket[L].resize(B + 1, 0);
      D.LinkBusyPerBucket[L][B] = U64(F[3]);
      continue;
    }
    if (F[0] == "mcq") {
      if (F.size() != 5)
        return Fail("mcq needs bucket,mc,enq,wait");
      std::size_t B = U64(F[1]);
      unsigned M = static_cast<unsigned>(U64(F[2]));
      if (M >= D.McQueuePerBucket.size())
        return Fail("mc id out of range (missing meta?)");
      if (D.McQueuePerBucket[M].size() <= B)
        D.McQueuePerBucket[M].resize(B + 1);
      D.McQueuePerBucket[M][B].Enqueued = U64(F[3]);
      D.McQueuePerBucket[M][B].WaitCycles = U64(F[4]);
      continue;
    }
    if (F[0] == "traffic") {
      if (F.size() != 5)
        return Fail("traffic needs node,mc,requests,hops");
      unsigned N = static_cast<unsigned>(U64(F[1]));
      unsigned M = static_cast<unsigned>(U64(F[2]));
      if (N >= D.NumNodes || M >= D.NumMCs)
        return Fail("traffic node/mc out of range (missing meta?)");
      D.NodeToMCRequests[static_cast<std::size_t>(N) * D.NumMCs + M] =
          U64(F[3]);
      continue;
    }
    return Fail("unknown row kind '" + F[0] + "'");
  }
  if (D.NumNodes == 0 || D.NumMCs == 0)
    return Fail("missing num_nodes/num_mcs meta");
  return true;
}

std::string offchip::renderTraceReport(const TraceData &D) {
  std::string Out;
  Out += formatString("trace report: %u nodes (%ux%u mesh), %u MCs, "
                      "sample=%u cycles\n",
                      D.NumNodes, D.MeshX,
                      D.MeshX ? D.NumNodes / D.MeshX : 0, D.NumMCs,
                      D.Config.SampleCycles);
  Out += formatString("events: %llu emitted, %llu dropped by the ring "
                      "(aggregates below cover the whole run)\n\n",
                      (unsigned long long)D.EmittedEvents,
                      (unsigned long long)D.DroppedEvents);

  // --- Per-link heatmap: node grid of total outgoing-link busy cycles. ---
  Out += "link utilization heatmap (busy cycles per node's outgoing links"
         ", E/W/S/N summed):\n";
  unsigned MeshY = D.MeshX ? D.NumNodes / D.MeshX : 1;
  std::vector<std::uint64_t> PerLinkTotal(D.LinkBusyPerBucket.size(), 0);
  for (std::size_t L = 0; L < D.LinkBusyPerBucket.size(); ++L)
    for (std::uint64_t V : D.LinkBusyPerBucket[L])
      PerLinkTotal[L] += V;
  for (unsigned Y = 0; Y < MeshY; ++Y) {
    std::string Row = "  ";
    for (unsigned X = 0; X < D.MeshX; ++X) {
      unsigned N = Y * D.MeshX + X;
      std::uint64_t Total = 0;
      for (unsigned Dir = 0; Dir < 4; ++Dir)
        Total += PerLinkTotal[N * 4 + Dir];
      Row += padLeft(formatString("%llu", (unsigned long long)Total), 10);
    }
    Out += Row + "\n";
  }

  // Busiest directed links, with their peak bucket.
  std::vector<unsigned> Order;
  for (unsigned L = 0; L < PerLinkTotal.size(); ++L)
    if (PerLinkTotal[L] != 0)
      Order.push_back(L);
  std::sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    return PerLinkTotal[A] != PerLinkTotal[B] ? PerLinkTotal[A] > PerLinkTotal[B]
                                              : A < B;
  });
  static const char *DirNames[4] = {"E", "W", "S", "N"};
  Out += "\nbusiest links:\n";
  Out += "  " + padRight("link", 14) + padLeft("busy_cycles", 12) +
         padLeft("peak_bucket", 12) + padLeft("peak_busy", 10) + "\n";
  for (std::size_t I = 0; I < Order.size() && I < 10; ++I) {
    unsigned L = Order[I];
    unsigned N = L / 4;
    std::uint64_t Peak = 0, PeakB = 0;
    const std::vector<std::uint64_t> &S = D.LinkBusyPerBucket[L];
    for (std::size_t B = 0; B < S.size(); ++B)
      if (S[B] > Peak) {
        Peak = S[B];
        PeakB = B;
      }
    Out += "  " +
           padRight(formatString("(%u,%u)%s", D.MeshX ? N % D.MeshX : N,
                                 D.MeshX ? N / D.MeshX : 0, DirNames[L % 4]),
                    14) +
           padLeft(formatString("%llu", (unsigned long long)PerLinkTotal[L]),
                   12) +
           padLeft(formatString("%llu", (unsigned long long)PeakB), 12) +
           padLeft(formatString("%llu", (unsigned long long)Peak), 10) + "\n";
  }

  // --- MC queue-depth percentiles (Little's law per bucket). ---
  Out += "\nMC queue depth per sample bucket (wait-cycles / sample-cycles):\n";
  Out += "  " + padRight("mc", 6) + padLeft("buckets", 8) + padLeft("mean", 9) +
         padLeft("p50", 9) + padLeft("p90", 9) + padLeft("p99", 9) +
         padLeft("max", 9) + "\n";
  std::size_t LastBucket = 0;
  for (const std::vector<TraceData::McSample> &S : D.McQueuePerBucket)
    LastBucket = std::max(LastBucket, S.size());
  for (unsigned M = 0; M < D.McQueuePerBucket.size(); ++M) {
    const std::vector<TraceData::McSample> &S = D.McQueuePerBucket[M];
    std::vector<double> Depth(LastBucket, 0.0);
    double Sum = 0.0;
    for (std::size_t B = 0; B < S.size(); ++B) {
      Depth[B] = static_cast<double>(S[B].WaitCycles) /
                 static_cast<double>(D.Config.SampleCycles);
      Sum += Depth[B];
    }
    std::vector<double> Sorted = Depth;
    std::sort(Sorted.begin(), Sorted.end());
    double Mean = LastBucket ? Sum / static_cast<double>(LastBucket) : 0.0;
    Out += "  " + padRight(formatString("mc%u", M), 6) +
           padLeft(formatString("%llu", (unsigned long long)LastBucket), 8) +
           padLeft(formatString("%.3f", Mean), 9) +
           padLeft(formatString("%.3f", percentileSorted(Sorted, 0.50)), 9) +
           padLeft(formatString("%.3f", percentileSorted(Sorted, 0.90)), 9) +
           padLeft(formatString("%.3f", percentileSorted(Sorted, 0.99)), 9) +
           padLeft(formatString("%.3f",
                                Sorted.empty() ? 0.0 : Sorted.back()),
                   9) +
           "\n";
  }

  // --- Per-(node, MC) distance histogram (Figure 13/15 cross-check). ---
  std::vector<std::uint64_t> ByDistance;
  std::uint64_t Requests = 0, WeightedHops = 0;
  for (unsigned N = 0; N < D.NumNodes; ++N)
    for (unsigned M = 0; M < D.NumMCs; ++M) {
      std::uint64_t Req = D.requestsAt(N, M);
      if (Req == 0)
        continue;
      unsigned H = manhattan(D, N, M);
      if (ByDistance.size() <= H)
        ByDistance.resize(H + 1, 0);
      ByDistance[H] += Req;
      Requests += Req;
      WeightedHops += Req * H;
    }
  Out += "\noff-chip request distance histogram (requester -> MC hops):\n";
  Out += "  " + padRight("hops", 6) + padLeft("requests", 12) +
         padLeft("share", 9) + padLeft("cum", 9) + "\n";
  std::uint64_t Cum = 0;
  for (unsigned H = 0; H < ByDistance.size(); ++H) {
    if (ByDistance[H] == 0)
      continue;
    Cum += ByDistance[H];
    double Share = Requests ? static_cast<double>(ByDistance[H]) /
                                  static_cast<double>(Requests)
                            : 0.0;
    double CumShare =
        Requests ? static_cast<double>(Cum) / static_cast<double>(Requests)
                 : 0.0;
    Out += "  " + padRight(formatString("%u", H), 6) +
           padLeft(formatString("%llu", (unsigned long long)ByDistance[H]),
                   12) +
           padLeft(formatPercent(Share), 9) +
           padLeft(formatPercent(CumShare), 9) + "\n";
  }
  double MeanHops = Requests ? static_cast<double>(WeightedHops) /
                                   static_cast<double>(Requests)
                             : 0.0;
  Out += formatString("  total %llu off-chip requests, mean distance %.2f "
                      "hops\n",
                      (unsigned long long)Requests, MeanHops);
  return Out;
}
