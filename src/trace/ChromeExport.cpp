//===- trace/ChromeExport.cpp ---------------------------------------------===//

#include "trace/ChromeExport.h"

#include "support/Format.h"

#include <fstream>

using namespace offchip;

namespace {

const char *kindName(TraceKind K) {
  switch (K) {
  case TraceKind::L1Hit:
    return "l1-hit";
  case TraceKind::L1Miss:
    return "l1-miss";
  case TraceKind::L2Hit:
    return "l2-hit";
  case TraceKind::L2Miss:
    return "l2-miss";
  case TraceKind::DirLookup:
    return "dir-lookup";
  case TraceKind::RemoteL2Hit:
    return "remote-l2";
  case TraceKind::NocHop:
    return "hop";
  case TraceKind::MCEnqueue:
    return "mc-queue";
  case TraceKind::BankService:
    return "bank";
  case TraceKind::L1Fill:
    return "l1-fill";
  case TraceKind::Complete:
    return "access";
  case TraceKind::BurstCoalesce:
    return "burst";
  case TraceKind::WindowDrain:
    return "window-drain";
  case TraceKind::Invalidate:
    return "invalidate";
  case TraceKind::Downgrade:
    return "downgrade";
  case TraceKind::InvAck:
    return "inv-ack";
  }
  return "?";
}

/// Direction suffix of a directed link id (Network's node * 4 + dir).
const char *dirName(unsigned Dir) {
  static const char *Names[4] = {"E", "W", "S", "N"};
  return Names[Dir & 3];
}

} // namespace

std::string offchip::renderChromeTrace(const TraceData &D) {
  std::string Out;
  Out.reserve(D.Events.size() * 96 + 4096);
  Out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";

  // Track metadata: names for the three pids and every tid that can appear.
  auto Meta = [&Out](const char *What, unsigned Pid, long long Tid,
                     const std::string &Name) {
    Out += formatString("{\"ph\":\"M\",\"name\":\"%s\",\"pid\":%u", What, Pid);
    if (Tid >= 0)
      Out += formatString(",\"tid\":%lld", Tid);
    Out += ",\"args\":{\"name\":\"" + Name + "\"}},\n";
  };
  Meta("process_name", 0, -1, "cores");
  Meta("process_name", 1, -1, "noc");
  Meta("process_name", 2, -1, "dram");
  for (unsigned N = 0; N < D.NumNodes; ++N) {
    unsigned X = D.MeshX ? N % D.MeshX : N;
    unsigned Y = D.MeshX ? N / D.MeshX : 0;
    Meta("thread_name", 0, N, formatString("node(%u,%u)", X, Y));
  }
  for (unsigned L = 0; L < D.NumNodes * 4; ++L) {
    unsigned N = L / 4;
    unsigned X = D.MeshX ? N % D.MeshX : N;
    unsigned Y = D.MeshX ? N / D.MeshX : 0;
    Meta("thread_name", 1, L,
         formatString("link(%u,%u)%s", X, Y, dirName(L % 4)));
  }
  for (unsigned M = 0; M < D.NumMCs; ++M)
    Meta("thread_name", 2, M,
         formatString("mc%u@node%u",
                      M, M < D.MCNodes.size() ? D.MCNodes[M] : 0));

  // Every metadata line above ends in ",\n"; with no events that comma
  // would dangle before the closing bracket.
  if (D.Events.empty() && Out.size() >= 2 &&
      Out.compare(Out.size() - 2, 2, ",\n") == 0)
    Out.replace(Out.size() - 2, 2, "\n");

  const std::uint64_t ThreadMask = (1ull << D.ThreadShift) - 1;
  for (std::size_t I = 0; I < D.Events.size(); ++I) {
    const TraceEvent &E = D.Events[I];
    unsigned Pid = 0;
    unsigned long long Tid = E.Node;
    switch (E.Kind) {
    case TraceKind::NocHop:
      Pid = 1;
      Tid = E.Aux;
      break;
    case TraceKind::MCEnqueue:
      Pid = 2;
      Tid = E.Aux;
      break;
    case TraceKind::BankService:
      Pid = 2;
      Tid = E.Aux >> 16;
      break;
    case TraceKind::BurstCoalesce:
      Pid = 2;
      Tid = E.Aux >> 8;
      break;
    default:
      break;
    }
    unsigned long long Thread = E.Key & ThreadMask;
    // Complete ("X") events: zero-duration steps still render as instant-
    // like slivers; keeping one phase keeps the export simple and sortable.
    Out += formatString(
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
        "\"pid\":%u,\"tid\":%llu,\"args\":{\"thread\":%llu,\"node\":%u,"
        "\"addr\":%llu,\"aux\":%llu}}",
        kindName(E.Kind), (unsigned long long)E.Start,
        (unsigned long long)E.Dur, Pid, Tid, Thread, E.Node,
        (unsigned long long)E.Addr, (unsigned long long)E.Aux);
    Out += I + 1 < D.Events.size() ? ",\n" : "\n";
  }
  Out += formatString("],\"otherData\":{\"emitted_events\":%llu,"
                      "\"dropped_events\":%llu,\"sample_cycles\":%u}}\n",
                      (unsigned long long)D.EmittedEvents,
                      (unsigned long long)D.DroppedEvents,
                      D.Config.SampleCycles);
  return Out;
}

bool offchip::writeChromeTrace(const TraceData &D, const std::string &Path) {
  std::ofstream Out(Path, std::ios::trunc | std::ios::binary);
  if (!Out)
    return false;
  Out << renderChromeTrace(D);
  return static_cast<bool>(Out);
}
