//===- trace/ChromeExport.h - Chrome/Perfetto trace.json export -*- C++ -*-===//
///
/// \file
/// Renders a TraceData as a Chrome trace-event-format JSON string, loadable
/// in Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps are
/// simulated cycles, not microseconds; every value is an integer, so the
/// output is byte-deterministic — equal TraceData renders to equal bytes,
/// which the --sim-threads identity tests rely on.
///
/// Track layout:
///   pid 0 "cores"  — one tid per node; access lifecycle spans.
///   pid 1 "noc"    — one tid per directed link; per-hop occupancy spans.
///   pid 2 "dram"   — one tid per MC; enqueue/bank-service spans.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_TRACE_CHROMEEXPORT_H
#define OFFCHIP_TRACE_CHROMEEXPORT_H

#include "trace/TraceEvent.h"

namespace offchip {

/// The whole trace.json, ready to write to disk.
std::string renderChromeTrace(const TraceData &D);

/// Renders to \p Path; \returns false (and leaves a partial file possible)
/// on I/O failure.
bool writeChromeTrace(const TraceData &D, const std::string &Path);

} // namespace offchip

#endif // OFFCHIP_TRACE_CHROMEEXPORT_H
