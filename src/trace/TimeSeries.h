//===- trace/TimeSeries.h - Time-series dump and summaries ------*- C++ -*-===//
///
/// \file
/// The compact CSV time-series dump (tools/trace-report's input) and the
/// summary tables derived from it: per-link utilization heatmap, MC
/// queue-depth percentiles, and the per-(node, MC) distance histogram that
/// cross-checks the Figure 13/15 aggregates.
///
/// Dump format — plain CSV rows, '#' comments, all integers, byte-
/// deterministic:
///
///   meta,<key>,<value>                 machine geometry + trace settings
///   link,<bucket>,<link>,<busy>        busy cycles of directed link <link>
///                                      in [bucket*sample, (bucket+1)*sample)
///   mcq,<bucket>,<mc>,<enq>,<wait>     requests enqueued at MC <mc> in the
///                                      bucket and their total queue wait
///   traffic,<node>,<mc>,<requests>,<hops>   whole-run off-chip request
///                                      count and Manhattan distance
///
/// Zero rows are omitted. The aggregate tables behind link/mcq/traffic are
/// collected outside the event ring (TraceSink), so the dump covers the
/// whole run even when the event buffer wrapped.
///
//===----------------------------------------------------------------------===//

#ifndef OFFCHIP_TRACE_TIMESERIES_H
#define OFFCHIP_TRACE_TIMESERIES_H

#include "trace/TraceEvent.h"

namespace offchip {

/// Renders the CSV dump described above.
std::string renderTimeSeriesCsv(const TraceData &D);

/// Writes the dump to \p Path; \returns false on I/O failure.
bool writeTimeSeriesCsv(const TraceData &D, const std::string &Path);

/// Parses a dump produced by renderTimeSeriesCsv back into a TraceData
/// (aggregate tables + geometry only; Events stays empty). \returns false
/// and fills \p Err on malformed input.
bool parseTimeSeriesCsv(const std::string &Text, TraceData &D,
                        std::string *Err);

/// The trace-report summary: one human-readable text block with the
/// per-link heatmap, queue-depth percentiles and distance histogram.
/// Shared by tools/trace-report and the tests.
std::string renderTraceReport(const TraceData &D);

} // namespace offchip

#endif // OFFCHIP_TRACE_TIMESERIES_H
