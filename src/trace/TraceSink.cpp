//===- trace/TraceSink.cpp ------------------------------------------------===//

#include "trace/TraceSink.h"

#include <algorithm>

using namespace offchip;

TraceSink::TraceSink(const TraceConfig &Config, unsigned NumNodes,
                     unsigned MeshX, unsigned NumMCs,
                     std::vector<unsigned> MCNodes)
    : Config(Config), MeshX(MeshX), NumMCs(NumMCs),
      MCNodes(std::move(MCNodes)), Rings(NumNodes),
      LinkBusyPerBucket(static_cast<std::size_t>(NumNodes) * 4),
      McQueuePerBucket(NumMCs),
      NodeToMCRequests(static_cast<std::size_t>(NumNodes) * NumMCs, 0) {
  if (Config.SampleCycles == 0)
    this->Config.SampleCycles = 1;
  if (this->Config.MaxEventsPerNode == 0)
    this->Config.MaxEventsPerNode = 1;
}

void TraceSink::push(unsigned Node, const TraceEvent &E) {
  NodeRing &R = Rings[Node];
  ++R.Emitted;
  std::size_t Cap = static_cast<std::size_t>(Config.MaxEventsPerNode);
  if (R.Events.size() < Cap) {
    R.Events.push_back(E);
    ++R.Count;
    return;
  }
  // Ring full: overwrite the oldest (keep the newest window). Deterministic
  // — a pure function of the node's event sequence.
  R.Events[R.First] = E;
  R.First = (R.First + 1) % Cap;
  ++R.Dropped;
}

void TraceSink::emitShared(TraceKind Kind, std::uint64_t Start,
                           std::uint32_t Dur, std::uint64_t Addr,
                           std::uint32_t Aux) {
  assert(CtxActive && "emitShared outside beginShared/endShared");
  push(CtxNode, {CtxKey, Start, Addr, Dur, Aux,
                 static_cast<std::uint16_t>(CtxNode), Kind});

  // Fold into the aggregate tables. These are never ring-capped, so the
  // derived time series and the Figure 13 cross-check cover the whole run
  // even when the event dump is truncated.
  std::size_t Bucket = static_cast<std::size_t>(Start / Config.SampleCycles);
  switch (Kind) {
  case TraceKind::NocHop: {
    std::vector<std::uint64_t> &Series = LinkBusyPerBucket[Aux];
    if (Series.size() <= Bucket)
      Series.resize(Bucket + 1, 0);
    Series[Bucket] += Dur;
    break;
  }
  case TraceKind::MCEnqueue: {
    std::vector<TraceData::McSample> &Series = McQueuePerBucket[Aux];
    if (Series.size() <= Bucket)
      Series.resize(Bucket + 1);
    Series[Bucket].Enqueued += 1;
    Series[Bucket].WaitCycles += Dur;
    NodeToMCRequests[static_cast<std::size_t>(CtxNode) * NumMCs + Aux] += 1;
    break;
  }
  default:
    break;
  }
}

std::uint64_t TraceSink::emitted() const {
  std::uint64_t N = 0;
  for (const NodeRing &R : Rings)
    N += R.Emitted;
  return N;
}

std::uint64_t TraceSink::dropped() const {
  std::uint64_t N = 0;
  for (const NodeRing &R : Rings)
    N += R.Dropped;
  return N;
}

TraceData TraceSink::take(unsigned ThreadShift) {
  TraceData D;
  D.Config = Config;
  D.NumNodes = static_cast<unsigned>(Rings.size());
  D.MeshX = MeshX;
  D.NumMCs = NumMCs;
  D.ThreadShift = ThreadShift;
  D.MCNodes = std::move(MCNodes);
  D.EmittedEvents = emitted();
  D.DroppedEvents = dropped();

  std::size_t Total = 0;
  for (const NodeRing &R : Rings)
    Total += R.Count;
  D.Events.reserve(Total);
  for (NodeRing &R : Rings) {
    // Unwind the ring oldest-first so per-node emission order survives.
    for (std::size_t I = 0; I < R.Count; ++I)
      D.Events.push_back(R.Events[(R.First + I) % R.Events.size()]);
    R.Events.clear();
    R.Count = 0;
    R.First = 0;
  }
  // Stable sort by key: same-key events all come from one node's buffer,
  // already in emission order, so this is the serial event order for any
  // engine (see TraceEvent.h).
  std::stable_sort(
      D.Events.begin(), D.Events.end(),
      [](const TraceEvent &A, const TraceEvent &B) { return A.Key < B.Key; });

  D.LinkBusyPerBucket = std::move(LinkBusyPerBucket);
  D.McQueuePerBucket = std::move(McQueuePerBucket);
  D.NodeToMCRequests = std::move(NodeToMCRequests);
  return D;
}
