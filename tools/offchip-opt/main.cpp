//===- tools/offchip-opt/main.cpp - command-line driver --------------------===//
///
/// The library's front door as a tool: reads an affine program in the
/// textual format (affine/ProgramText.h), runs the layout pass against a
/// configurable machine, and reports what a user of the paper's compiler
/// would want to know — per-array decisions, Table 2-style coverage, the
/// transformed source (Figure 9c), and optionally an original-vs-optimized
/// simulation.
///
/// The work happens through the service API (api/Execute.h): this tool
/// builds the same SimRequest a network client of offchip-serve would
/// send, and renders the SimResponse — the CLI and the daemon share one
/// validated execution path.
///
/// Usage:
///   offchip-opt [options] <program.txt>
///   offchip-opt --demo                     # run the built-in Figure 9 demo
///
//===----------------------------------------------------------------------===//

#include "api/Execute.h"
#include "sim/Report.h"
#include "support/Options.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace offchip;

namespace {

const char *Figure9Demo = R"(
# Figure 9(a): transposed stencil, outer loop parallelized.
program figure9
array z dims 256 256 elem 8

nest stencil bounds 0:256 1:255 parallel 0 repeat 2
  read  z [ i1-1, i0 ]
  read  z [ i1, i0 ]
  write z [ i1+1, i0 ]
end
)";

} // namespace

int main(int Argc, char **Argv) {
  SimRequest Request;
  Request.Kind = RequestKind::Optimize;
  MachineConfig &Config = Request.Config;
  unsigned Jobs = 1;
  bool EmitCode = false, Simulate = false, Csv = false, Demo = false;
  bool Trace = false;
  std::string TraceOut = "trace";

  OptionsParser Options("offchip-opt",
                        "layout pass driver for textual affine programs");
  Options.positionalHelp("<program.txt>");
  Options.custom("--mesh", "<X>x<Y>",
                 [&](const std::string &V) {
                   unsigned X = 0, Y = 0;
                   if (std::sscanf(V.c_str(), "%ux%u", &X, &Y) != 2 ||
                       X == 0 || Y == 0)
                     return false;
                   Config.MeshX = X;
                   Config.MeshY = Y;
                   return true;
                 },
                 "mesh size (default 8x8)");
  Options.value("--mcs", &Config.NumMCs, "memory controllers (default 4)");
  // Flag-level mistakes get the same structured field/value/constraint/fix
  // diagnostics validate() produces: the lambdas record one and fail the
  // parse, and the error path below prefers it over the generic message.
  std::vector<ConfigDiagnostic> FlagDiags;
  Options.custom("--placement", "<kind>",
                 [&](const std::string &V) {
                   if (std::optional<ConfigDiagnostic> D =
                           parsePlacementOption(V, &Config.Placement)) {
                     FlagDiags.push_back(std::move(*D));
                     return false;
                   }
                   return true;
                 },
                 std::string("MC placement kind: ") + mcPlacementNames() +
                     " (default corners)");
  Options.custom("--mc-nodes", "<n0,n1,...>",
                 [&](const std::string &V) {
                   if (std::optional<ConfigDiagnostic> D =
                           parseMCNodeListOption(V, &Config.MCNodes)) {
                     FlagDiags.push_back(std::move(*D));
                     return false;
                   }
                   Config.Placement = MCPlacementKind::Explicit;
                   return true;
                 },
                 "explicit MC node ids, one per MC in interleave order "
                 "(implies --placement explicit)");
  Options.value("--mcs-per-cluster", &Request.MCsPerCluster,
                "MCs per cluster, mapping M2 style (default 1)");
  Options.flag("--shared-l2", &Config.SharedL2,
               "SNUCA shared L2 instead of private slices");
  bool Page = false;
  Options.flag("--page", &Page, "page interleaving (default cache-line)");
  Options.flag("--emit-code", &EmitCode,
               "print the transformed program source");
  Options.flag("--simulate", &Simulate,
               "run original vs optimized on the scaled machine");
  Options.value("--jobs", &Jobs,
                "worker threads for --simulate (0 = all cores)");
  Options.value("--sim-threads", &Config.SimThreads,
                "host threads inside each simulation (default 1 = serial "
                "engine; results are bit-identical for any value)");
  Options.value("--sim-window-batch", &Config.SimWindowBatch,
                "events/resumes per parallel-engine mailbox publish "
                "(default 1 = publish immediately; bit-identical)");
  Options.value("--sim-replica-epochs", &Config.SimReplicaEpochs,
                "staleness bound of the workers' shard-local translation "
                "replicas, in merger windows (default 0 = off; "
                "bit-identical)");
  Options.flag("--burst-coalesce", &Config.Burst.Enabled,
               "coalesce runs of adjacent off-chip lines into wide DRAM "
               "transactions (default off)");
  Options.custom("--coherence", "<msi|mesi>",
                 [&](const std::string &V) {
                   if (V == "msi")
                     Config.Coherence.Protocol =
                         MachineConfig::CoherenceProtocol::MSI;
                   else if (V == "mesi")
                     Config.Coherence.Protocol =
                         MachineConfig::CoherenceProtocol::MESI;
                   else
                     return false;
                   return true;
                 },
                 "model an invalidation-based coherence protocol "
                 "(default off)");
  Options.custom("--sparse-dir", "<N>",
                 [&](const std::string &V) {
                   unsigned N = 0;
                   if (std::sscanf(V.c_str(), "%u", &N) != 1 || N == 0)
                     return false;
                   Config.Coherence.SparseDirectory = true;
                   Config.Coherence.SparseEntries = N;
                   return true;
                 },
                 "bound the coherence directory to N tracked lines "
                 "(default unbounded; needs --coherence)");
  Options.flag("--csv", &Csv, "print simulation results as CSV");
  Options.flag("--trace", &Trace,
               "with --simulate, write per-request traces "
               "(<prefix>-original/-optimized .trace.json/.series.csv)");
  Options.value("--trace-out", &TraceOut,
                "output path prefix for --trace files (default \"trace\")");
  Options.value("--trace-sample-cycles", &Config.Trace.SampleCycles,
                "bucket width of the traced link/MC time series, in cycles");
  Options.flag("--demo", &Demo, "run the built-in Figure 9 demo");

  std::string Err;
  bool WantedHelp = false;
  if (!Options.parse(Argc, Argv, &Err, &WantedHelp)) {
    if (WantedHelp) {
      std::fputs(Err.c_str(), stdout);
      return 0;
    }
    if (!FlagDiags.empty()) {
      std::fprintf(stderr, "%s\n", renderDiagnostics(FlagDiags).c_str());
      return 2;
    }
    std::fprintf(stderr, "error: %s\n%s", Err.c_str(),
                 Options.helpText().c_str());
    return 2;
  }
  if (Page)
    Config.Granularity = InterleaveGranularity::Page;
  if (Config.Coherence.SparseDirectory && !Config.Coherence.enabled()) {
    std::fprintf(stderr, "error: --sparse-dir requires --coherence\n");
    return 2;
  }
  if (Options.positional().size() > 1 ||
      (!Demo && Options.positional().empty())) {
    std::fprintf(stderr, "error: expected one <program.txt>\n%s",
                 Options.helpText().c_str());
    return 2;
  }

  // Reject impossible machines with structured diagnostics while the
  // mistake is still a command-line matter — before touching the program
  // file, exactly as this tool always has.
  if (std::vector<ConfigDiagnostic> Diags = Config.validate();
      !Diags.empty()) {
    std::fprintf(stderr, "%s\n", renderDiagnostics(Diags).c_str());
    return 2;
  }

  if (Demo) {
    Request.Workload.ProgramText = Figure9Demo;
  } else {
    const std::string &Path = Options.positional().front();
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Request.Workload.ProgramText = SS.str();
  }

  if (Simulate) {
    Request.Kind = RequestKind::Simulate;
    if (Trace)
      Request.TracePrefix = TraceOut;
  }

  SimResponse Resp = executeRequest(Request, Jobs);
  if (!Resp.ok()) {
    if (!Resp.Diagnostics.empty())
      std::fprintf(stderr, "%s\n", renderDiagnostics(Resp.Diagnostics).c_str());
    else
      std::fprintf(stderr, "error: %s\n", Resp.ErrorText.c_str());
    return 1;
  }
  const PlanSummary &Plan = Resp.Plan;

  std::printf("program:  %s\n", Plan.ProgramName.c_str());
  std::printf("machine:  %s\n", Config.summary().c_str());
  std::printf("mapping:  %u clusters of %ux%u cores, %u MC(s) each\n\n",
              Plan.NumClusters, Plan.CoresPerClusterX, Plan.CoresPerClusterY,
              Plan.MCsPerCluster);

  std::printf("%-16s %-10s %-22s %s\n", "array", "decision", "U", "note");
  for (const PlanArrayRow &Row : Plan.Arrays)
    std::printf("%-16s %-10s %-22s %s\n", Row.Name.c_str(),
                Row.Optimized ? "optimized" : "kept", Row.U.c_str(),
                Row.Note.c_str());
  std::printf("\narrays optimized: %.0f%%, references satisfied: %.0f%%\n",
              100.0 * Plan.ArraysOptimizedFraction,
              100.0 * Plan.RefsSatisfiedFraction);

  if (EmitCode)
    std::printf("\n==== transformed source ====\n%s\n",
                Plan.TransformedSource.c_str());

  if (Simulate) {
    const SimResult &Base = *Resp.Original;
    const SimResult &Opt = *Resp.Optimized;
    if (Csv) {
      std::printf("\n%s",
                  renderCsv({{"original", &Base}, {"optimized", &Opt}})
                      .c_str());
    } else {
      std::printf("\n==== original ====\n%s", renderSummary(Base).c_str());
      std::printf("\n==== optimized ====\n%s", renderSummary(Opt).c_str());
      SavingsSummary S = summarizeSavings(Base, Opt);
      std::printf("\nsavings: exec %.1f%%, on-chip net %.1f%%, off-chip net "
                  "%.1f%%, memory %.1f%%\n",
                  100.0 * S.ExecutionTime, 100.0 * S.OnChipNetLatency,
                  100.0 * S.OffChipNetLatency, 100.0 * S.MemLatency);
    }
  }
  return 0;
}
