//===- tools/offchip-opt/main.cpp - command-line driver --------------------===//
///
/// The library's front door as a tool: reads an affine program in the
/// textual format (affine/ProgramText.h), runs the layout pass against a
/// configurable machine, and reports what a user of the paper's compiler
/// would want to know — per-array decisions, Table 2-style coverage, the
/// transformed source (Figure 9c), and optionally an original-vs-optimized
/// simulation.
///
/// Usage:
///   offchip-opt [options] <program.txt>
///   offchip-opt --demo                     # run the built-in Figure 9 demo
///
/// Options:
///   --mesh <X>x<Y>        mesh size (default 8x8)
///   --mcs <N>             memory controllers (default 4)
///   --mcs-per-cluster <K> MCs per cluster, mapping M2 style (default 1)
///   --shared-l2           SNUCA shared L2 instead of private slices
///   --page                page interleaving (default cache-line)
///   --emit-code           print the transformed program source
///   --simulate            run original vs optimized on the scaled machine
///   --csv                 print simulation results as CSV
///
//===----------------------------------------------------------------------===//

#include "affine/ProgramText.h"
#include "core/CodeGen.h"
#include "harness/Experiment.h"
#include "sim/Report.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace offchip;

namespace {

const char *Figure9Demo = R"(
# Figure 9(a): transposed stencil, outer loop parallelized.
program figure9
array z dims 256 256 elem 8

nest stencil bounds 0:256 1:255 parallel 0 repeat 2
  read  z [ i1-1, i0 ]
  read  z [ i1, i0 ]
  write z [ i1+1, i0 ]
end
)";

int usage() {
  std::fprintf(stderr,
               "usage: offchip-opt [--mesh <X>x<Y>] [--mcs <N>] "
               "[--mcs-per-cluster <K>] [--shared-l2] [--page] "
               "[--emit-code] [--simulate] [--csv] <program.txt>\n"
               "       offchip-opt --demo [options]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  MachineConfig Config = MachineConfig::scaledDefault();
  unsigned MCsPerCluster = 1;
  bool EmitCode = false, Simulate = false, Csv = false, Demo = false;
  const char *Path = nullptr;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (!std::strcmp(Arg, "--mesh")) {
      const char *V = NextValue();
      unsigned X = 0, Y = 0;
      if (!V || std::sscanf(V, "%ux%u", &X, &Y) != 2 || X == 0 || Y == 0)
        return usage();
      Config.MeshX = X;
      Config.MeshY = Y;
    } else if (!std::strcmp(Arg, "--mcs")) {
      const char *V = NextValue();
      if (!V)
        return usage();
      Config.NumMCs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(Arg, "--mcs-per-cluster")) {
      const char *V = NextValue();
      if (!V)
        return usage();
      MCsPerCluster = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(Arg, "--shared-l2")) {
      Config.SharedL2 = true;
    } else if (!std::strcmp(Arg, "--page")) {
      Config.Granularity = InterleaveGranularity::Page;
    } else if (!std::strcmp(Arg, "--emit-code")) {
      EmitCode = true;
    } else if (!std::strcmp(Arg, "--simulate")) {
      Simulate = true;
    } else if (!std::strcmp(Arg, "--csv")) {
      Csv = true;
    } else if (!std::strcmp(Arg, "--demo")) {
      Demo = true;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      return usage();
    } else {
      Path = Arg;
    }
  }
  if (!Demo && !Path)
    return usage();

  std::string Text;
  if (Demo) {
    Text = Figure9Demo;
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path);
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Text = SS.str();
  }

  std::string Err;
  std::optional<AffineProgram> Program = parseProgramText(Text, &Err);
  if (!Program) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  ClusterMapping Mapping = MCsPerCluster == 1
                               ? makeM1Mapping(Config)
                               : makeM2Mapping(Config, MCsPerCluster);
  std::printf("program:  %s\n", Program->name().c_str());
  std::printf("machine:  %s\n", Config.summary().c_str());
  std::printf("mapping:  %u clusters of %ux%u cores, %u MC(s) each\n\n",
              Mapping.numClusters(), Mapping.coresPerClusterX(),
              Mapping.coresPerClusterY(), Mapping.mcsPerCluster());

  LayoutTransformer Pass(Mapping, Config.layoutOptions());
  LayoutPlan Plan = Pass.run(*Program);

  std::printf("%-16s %-10s %-22s %s\n", "array", "decision", "U", "note");
  for (ArrayId Id = 0; Id < Program->numArrays(); ++Id) {
    const ArrayLayoutResult &R = Plan.PerArray[Id];
    if (!R.Accessed)
      continue;
    std::printf("%-16s %-10s %-22s %s\n",
                Program->array(Id).Name.c_str(),
                R.Optimized ? "optimized" : "kept",
                R.Optimized ? R.U.toString().c_str() : "-",
                R.Note.c_str());
  }
  std::printf("\narrays optimized: %.0f%%, references satisfied: %.0f%%\n",
              100.0 * Plan.arraysOptimizedFraction(),
              100.0 * Plan.refsSatisfiedFraction());

  if (EmitCode)
    std::printf("\n==== transformed source ====\n%s\n",
                emitProgram(*Program, Plan).c_str());

  if (Simulate) {
    LayoutPlan Original = LayoutTransformer::originalPlan(*Program);
    MachineConfig OptConfig = Config;
    if (Config.Granularity == InterleaveGranularity::Page)
      OptConfig.PagePolicy = PageAllocPolicy::CompilerGuided;
    SimResult Base = runSingle(*Program, Original, Config, Mapping);
    SimResult Opt = runSingle(*Program, Plan, OptConfig, Mapping);
    if (Csv) {
      std::printf("\n%s",
                  renderCsv({{"original", &Base}, {"optimized", &Opt}})
                      .c_str());
    } else {
      std::printf("\n==== original ====\n%s", renderSummary(Base).c_str());
      std::printf("\n==== optimized ====\n%s", renderSummary(Opt).c_str());
      SavingsSummary S = summarizeSavings(Base, Opt);
      std::printf("\nsavings: exec %.1f%%, on-chip net %.1f%%, off-chip net "
                  "%.1f%%, memory %.1f%%\n",
                  100.0 * S.ExecutionTime, 100.0 * S.OnChipNetLatency,
                  100.0 * S.OffChipNetLatency, 100.0 * S.MemLatency);
    }
  }
  return 0;
}
