//===- tools/offchip-storm/main.cpp - client storm for offchip-serve -------===//
///
/// Drives an already-running offchip-serve with closed-loop client swarms
/// at several concurrency levels and reports sustained requests/s plus
/// latency percentiles, a cache cold-vs-hit comparison, and (with
/// --verify) a bit-identity check of served responses against a local
/// executeRequest() run. The measurements land in BENCH_serve.json; the
/// exit code is non-zero if any response was dropped, malformed or — under
/// --verify — not identical to the direct run.
///
/// A "dropped" response cannot hide: every client is closed-loop (one
/// request outstanding), so a missing answer stalls its client and the
/// per-request id check catches any misrouted line.
///
//===----------------------------------------------------------------------===//

#include "api/ContentHash.h"
#include "api/Execute.h"
#include "api/Serialize.h"
#include "api/Socket.h"
#include "support/Format.h"
#include "support/Options.h"
#include "workloads/WorkloadFactory.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace offchip;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// A small affine program that simulates quickly but still gives the
/// layout pass a transposed reference to fix — the workhorse of the
/// cold-vs-hit probe and the --verify simulate check.
const char *StormProgram = R"(
program stormlet
array a dims 64 64 elem 8

nest sweep bounds 0:64 1:63 parallel 0
  read  a [ i1-1, i0 ]
  write a [ i1, i0 ]
end
)";

/// The deterministic request mix: a hot set of optimize requests over the
/// registered apps (exercises the cache) plus a per-client unique scale
/// every fourth request (forces cold misses throughout the run).
///
/// With \p DuplicateRatio > 0, that fraction of each client's iterations
/// instead sends a simulate request whose content is identical across every
/// client at the same (level, iteration) but unique to this storm run:
/// closed-loop clients advance roughly in lockstep, so the copies are in
/// flight together and the server's single-flight merging collapses them
/// onto one execution (stragglers land as cache hits instead).
SimRequest mixRequest(unsigned Level, unsigned Client, unsigned Iter,
                      double DuplicateRatio, int RunTag) {
  const std::vector<std::string> &Apps = WorkloadFactory::instance().names();
  SimRequest R;
  R.Id = formatString("l%u-c%u-i%u", Level, Client, Iter);
  if (DuplicateRatio > 0.0 &&
      static_cast<double>(Iter % 16) < DuplicateRatio * 16.0) {
    R.Kind = RequestKind::Simulate;
    R.Workload.ProgramText =
        std::string(StormProgram) +
        formatString("# dup run %d level %u iter %u\n", RunTag, Level, Iter);
    return R;
  }
  R.Kind = RequestKind::Optimize;
  R.Workload.App = Apps[(Client + Iter) % Apps.size()];
  if (Iter % 4 == 3) {
    // Unique content → guaranteed cache miss.
    R.Workload.SizeScale =
        1.0 + 0.001 * (1 + Level * 1000 + Client * 100 + Iter);
  } else {
    R.Workload.SizeScale = (Iter % 2) ? 1.0 : 0.5;
  }
  return R;
}

struct ClientTally {
  std::vector<double> LatenciesMs;
  std::uint64_t Hits = 0, Misses = 0;
  std::uint64_t Singleflight = 0; // merged onto an in-flight leader
  std::uint64_t Overloaded = 0; // retried, not dropped
  std::uint64_t Errors = 0;
  std::uint64_t VerifyFailures = 0;
};

/// Locally computed oracle responses, keyed by content key, shared across
/// clients (each unique request is executed directly at most once).
class Oracle {
public:
  const SimResponse &lookup(const SimRequest &R) {
    std::string Key = requestKey(R).str();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Cache.find(Key);
      if (It != Cache.end())
        return It->second;
    }
    SimResponse Direct = executeRequest(R, /*Jobs=*/1);
    std::lock_guard<std::mutex> Lock(Mu);
    return Cache.emplace(Key, std::move(Direct)).first->second;
  }

private:
  std::mutex Mu;
  std::map<std::string, SimResponse> Cache; // stable references
};

bool sameResult(const std::optional<SimResult> &Served,
                const std::optional<SimResult> &Direct, const char *What,
                std::string *Why) {
  if (Served.has_value() != Direct.has_value()) {
    *Why = formatString("%s present only on one side", What);
    return false;
  }
  if (Served && !equalResults(*Served, *Direct, Why))
    return false;
  return true;
}

/// Served-vs-direct bit identity: the plan and both variant results.
bool verifyResponse(const SimResponse &Served, const SimResponse &Direct,
                    std::string *Why) {
  if (!Direct.ok()) {
    *Why = "direct execution failed: " + Direct.ErrorText;
    return false;
  }
  if (toJson(Served.Plan).write() != toJson(Direct.Plan).write()) {
    *Why = "plan differs";
    return false;
  }
  return sameResult(Served.Original, Direct.Original, "original", Why) &&
         sameResult(Served.Optimized, Direct.Optimized, "optimized", Why);
}

/// One closed-loop client: send, await the matching id, retry overloads.
void runClient(const std::string &Host, unsigned Port, unsigned Level,
               unsigned Client, unsigned Requests, double DuplicateRatio,
               int RunTag, bool Verify, Oracle *Oracles, ClientTally *Tally) {
  std::string Err;
  int Fd = connectTcp(Host, Port, &Err);
  if (Fd < 0) {
    Tally->Errors += Requests;
    return;
  }
  LineReader Reader(Fd);
  for (unsigned I = 0; I < Requests; ++I) {
    SimRequest R = mixRequest(Level, Client, I, DuplicateRatio, RunTag);
    for (;;) {
      Clock::time_point Start = Clock::now();
      if (!sendAll(Fd, writeRequestLine(R))) {
        ++Tally->Errors;
        close(Fd);
        return;
      }
      std::string Line;
      if (!Reader.readLine(&Line)) {
        ++Tally->Errors; // dropped: no answer for an accepted request
        close(Fd);
        return;
      }
      double Ms = msSince(Start);
      std::optional<JsonValue> V = parseJson(Line, &Err);
      SimResponse Resp;
      if (!V || !responseFromJson(*V, &Resp, &Err) || Resp.Id != R.Id) {
        ++Tally->Errors;
        break;
      }
      if (Resp.Status == ResponseStatus::Overloaded) {
        ++Tally->Overloaded;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue; // retry the same request
      }
      if (!Resp.ok()) {
        ++Tally->Errors;
        break;
      }
      Tally->LatenciesMs.push_back(Ms);
      if (Resp.Singleflight)
        ++Tally->Singleflight;
      else if (Resp.CacheHit)
        ++Tally->Hits;
      else
        ++Tally->Misses;
      if (Verify) {
        std::string Why;
        if (!verifyResponse(Resp, Oracles->lookup(R), &Why)) {
          ++Tally->VerifyFailures;
          std::fprintf(stderr, "verify: %s: %s\n", R.Id.c_str(),
                       Why.c_str());
        }
      }
      break;
    }
  }
  close(Fd);
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  double Rank = P * (Sorted.size() - 1);
  std::size_t Lo = static_cast<std::size_t>(Rank);
  std::size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - Lo;
  return Sorted[Lo] * (1.0 - Frac) + Sorted[Hi] * Frac;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Host = "127.0.0.1";
  unsigned Port = 7411;
  std::string LevelsArg = "1,2,4,8";
  unsigned Requests = 32;
  std::string OutPath = "BENCH_serve.json";
  double DuplicateRatio = 0.0;
  bool Verify = false;

  OptionsParser Options("offchip-storm",
                        "client storm benchmark for offchip-serve");
  Options.value("--host", &Host, "server address (default 127.0.0.1)");
  Options.value("--port", &Port, "server port (default 7411)");
  Options.value("--levels", &LevelsArg,
                "comma-separated concurrent client counts (default 1,2,4,8)");
  Options.value("--requests", &Requests,
                "requests per client per level (default 32)");
  Options.value("--out", &OutPath,
                "measurement output path (default BENCH_serve.json)");
  Options.custom("--duplicate-ratio", "<0..1>",
                 [&](const std::string &V) {
                   char *End = nullptr;
                   double D = std::strtod(V.c_str(), &End);
                   if (End == V.c_str() || *End != '\0' || D < 0.0 || D > 1.0)
                     return false;
                   DuplicateRatio = D;
                   return true;
                 },
                 "fraction of each client's requests that are identical "
                 "across clients (default 0; the server merges concurrent "
                 "copies in flight — see singleflight_hits)");
  Options.flag("--verify", &Verify,
               "bit-compare every served response against a local "
               "executeRequest() run");

  std::string Err;
  bool WantedHelp = false;
  if (!Options.parse(Argc, Argv, &Err, &WantedHelp)) {
    if (WantedHelp) {
      std::fputs(Err.c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "error: %s\n%s", Err.c_str(),
                 Options.helpText().c_str());
    return 2;
  }

  std::vector<unsigned> Levels;
  {
    std::string Tok;
    for (char C : LevelsArg + ",") {
      if (C == ',') {
        if (!Tok.empty())
          Levels.push_back(static_cast<unsigned>(std::stoul(Tok)));
        Tok.clear();
      } else {
        Tok += C;
      }
    }
  }
  if (Levels.empty()) {
    std::fprintf(stderr, "error: --levels is empty\n");
    return 2;
  }
  if (WorkloadFactory::instance().names().empty()) {
    std::fprintf(stderr, "error: no workloads registered in this binary\n");
    return 1;
  }

  // Cold-vs-hit probe: the same simulate request twice on one connection.
  // The first answer is computed, the second must come from the cache; the
  // latency ratio is the headline number of the result cache.
  double ColdMs = 0.0, HitMs = 0.0;
  bool ProbeHit = false;
  {
    int Fd = connectTcp(Host, Port, &Err);
    if (Fd < 0) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    LineReader Reader(Fd);
    SimRequest Probe;
    Probe.Kind = RequestKind::Simulate;
    Probe.Workload.ProgramText = StormProgram;
    // Unique content per storm run so the first send is genuinely cold
    // even against a long-lived server.
    Probe.Workload.ProgramText +=
        formatString("# storm-run %d\n", static_cast<int>(getpid()));
    for (int Round = 0; Round < 2; ++Round) {
      Probe.Id = formatString("probe-%d", Round);
      Clock::time_point Start = Clock::now();
      std::string Line;
      if (!sendAll(Fd, writeRequestLine(Probe)) ||
          !Reader.readLine(&Line)) {
        std::fprintf(stderr, "error: cache probe got no answer\n");
        close(Fd);
        return 1;
      }
      double Ms = msSince(Start);
      std::optional<JsonValue> V = parseJson(Line, &Err);
      SimResponse Resp;
      if (!V || !responseFromJson(*V, &Resp, &Err) || !Resp.ok()) {
        std::fprintf(stderr, "error: cache probe failed: %s\n", Err.c_str());
        close(Fd);
        return 1;
      }
      if (Round == 0)
        ColdMs = Ms;
      else {
        HitMs = Ms;
        ProbeHit = Resp.CacheHit;
      }
    }
    close(Fd);
  }

  JsonValue LevelsJson = JsonValue::array();
  std::uint64_t TotalErrors = 0, TotalVerifyFailures = 0;
  std::printf("%-8s %-10s %-10s %-10s %-10s %-10s %-8s %-7s %s\n", "clients",
              "rps", "p50_ms", "p90_ms", "p99_ms", "hit_rate", "sf_hits",
              "retries", "errors");
  Oracle Oracles;
  int RunTag = static_cast<int>(getpid());
  for (unsigned Level : Levels) {
    std::vector<ClientTally> Tallies(Level);
    std::vector<std::thread> Threads;
    Clock::time_point Start = Clock::now();
    for (unsigned C = 0; C < Level; ++C)
      Threads.emplace_back(runClient, Host, Port, Level, C, Requests,
                           DuplicateRatio, RunTag, Verify, &Oracles,
                           &Tallies[C]);
    for (std::thread &T : Threads)
      T.join();
    double WallSeconds =
        std::chrono::duration<double>(Clock::now() - Start).count();

    std::vector<double> Lat;
    std::uint64_t Hits = 0, Misses = 0, Singleflight = 0, Overloads = 0,
                  Errors = 0, VerifyFailures = 0;
    for (const ClientTally &T : Tallies) {
      Lat.insert(Lat.end(), T.LatenciesMs.begin(), T.LatenciesMs.end());
      Hits += T.Hits;
      Misses += T.Misses;
      Singleflight += T.Singleflight;
      Overloads += T.Overloaded;
      Errors += T.Errors;
      VerifyFailures += T.VerifyFailures;
    }
    std::sort(Lat.begin(), Lat.end());
    double Rps = WallSeconds > 0 ? Lat.size() / WallSeconds : 0.0;
    double P50 = percentile(Lat, 0.50), P90 = percentile(Lat, 0.90),
           P99 = percentile(Lat, 0.99);
    std::uint64_t Answered = Hits + Misses + Singleflight;
    double HitRate = Answered ? static_cast<double>(Hits) / Answered : 0.0;
    TotalErrors += Errors;
    TotalVerifyFailures += VerifyFailures;

    std::printf("%-8u %-10.1f %-10.2f %-10.2f %-10.2f %-10.2f %-8llu %-7llu "
                "%llu\n",
                Level, Rps, P50, P90, P99, HitRate,
                static_cast<unsigned long long>(Singleflight),
                static_cast<unsigned long long>(Overloads),
                static_cast<unsigned long long>(Errors));

    JsonValue L = JsonValue::object();
    L.set("clients", JsonValue::number(Level));
    L.set("requests", JsonValue::number(
                          static_cast<std::uint64_t>(Lat.size())));
    L.set("wall_seconds", JsonValue::number(WallSeconds));
    L.set("rps", JsonValue::number(Rps));
    L.set("p50_ms", JsonValue::number(P50));
    L.set("p90_ms", JsonValue::number(P90));
    L.set("p99_ms", JsonValue::number(P99));
    L.set("cache_hits", JsonValue::number(Hits));
    L.set("cache_misses", JsonValue::number(Misses));
    L.set("singleflight_hits", JsonValue::number(Singleflight));
    L.set("overloaded_retries", JsonValue::number(Overloads));
    L.set("errors", JsonValue::number(Errors));
    L.set("verify_failures", JsonValue::number(VerifyFailures));
    LevelsJson.push(std::move(L));
  }

  JsonValue Out = JsonValue::object();
  Out.set("bench", JsonValue::string("serve"));
  Out.set("requests_per_client", JsonValue::number(Requests));
  Out.set("duplicate_ratio", JsonValue::number(DuplicateRatio));
  Out.set("verified", JsonValue::boolean(Verify));
  Out.set("cache_cold_ms", JsonValue::number(ColdMs));
  Out.set("cache_hit_ms", JsonValue::number(HitMs));
  Out.set("cache_probe_hit", JsonValue::boolean(ProbeHit));
  Out.set("cache_speedup",
          JsonValue::number(HitMs > 0.0 ? ColdMs / HitMs : 0.0));
  Out.set("levels", std::move(LevelsJson));

  std::printf("\ncache probe: cold %.2f ms, hit %.2f ms (%.0fx)%s\n", ColdMs,
              HitMs, HitMs > 0.0 ? ColdMs / HitMs : 0.0,
              ProbeHit ? "" : " [WARNING: second probe was not a hit]");

  FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  std::string Json = Out.write();
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fputc('\n', F);
  std::fclose(F);
  std::printf("wrote %s\n", OutPath.c_str());

  if (TotalErrors || TotalVerifyFailures || !ProbeHit) {
    std::fprintf(stderr,
                 "FAIL: %llu errors, %llu verify failures, probe hit=%d\n",
                 static_cast<unsigned long long>(TotalErrors),
                 static_cast<unsigned long long>(TotalVerifyFailures),
                 static_cast<int>(ProbeHit));
    return 1;
  }
  return 0;
}
