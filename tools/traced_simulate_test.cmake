# Runs offchip-opt --demo --simulate --trace and summarizes the resulting
# time-series dumps with trace-report. Drives the whole tracing pipeline
# end to end: simulate -> trace files on disk -> parse -> report.
#
# Expects: OFFCHIP_OPT, TRACE_REPORT (tool paths), WORK_DIR (scratch dir).

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${OFFCHIP_OPT}" --demo --simulate --trace
          --trace-out "${WORK_DIR}/demo"
  RESULT_VARIABLE SimRc
  OUTPUT_VARIABLE SimOut
  ERROR_VARIABLE SimErr)
if(NOT SimRc EQUAL 0)
  message(FATAL_ERROR "offchip-opt --simulate --trace failed (${SimRc}):\n"
                      "${SimOut}\n${SimErr}")
endif()

foreach(Run original optimized)
  foreach(Suffix trace.json series.csv)
    if(NOT EXISTS "${WORK_DIR}/demo-${Run}.${Suffix}")
      message(FATAL_ERROR "missing trace output demo-${Run}.${Suffix}")
    endif()
  endforeach()
endforeach()

execute_process(
  COMMAND "${TRACE_REPORT}" "${WORK_DIR}/demo-original.series.csv"
          "${WORK_DIR}/demo-optimized.series.csv"
  RESULT_VARIABLE RepRc
  OUTPUT_VARIABLE RepOut
  ERROR_VARIABLE RepErr)
if(NOT RepRc EQUAL 0)
  message(FATAL_ERROR "trace-report failed (${RepRc}):\n${RepOut}\n${RepErr}")
endif()
if(NOT RepOut MATCHES "off-chip request distance histogram")
  message(FATAL_ERROR "trace-report output missing distance histogram:\n"
                      "${RepOut}")
endif()
