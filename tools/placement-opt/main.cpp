//===- tools/placement-opt/main.cpp - joint placement x layout search -----===//
///
/// Searches memory-controller placements jointly with the paper's layout
/// transformation (ROADMAP item 4): every candidate is an Explicit
/// MachineConfig::MCNodes list, MachineConfig::validate() (plus
/// validateGrouping() when --mcs-per-cluster > 1) is the feasibility
/// oracle, and candidate evaluations fan across cores through
/// ExperimentRunner. Small spaces (at most --exhaustive-threshold
/// candidate node sets) are enumerated exhaustively; larger ones run a
/// seeded batch-synchronous simulated annealing.
///
/// Output is a Pareto table over the fig03 apps — placement x layout ->
/// avg off-chip latency, off-chip message hops, link-busy cycles —
/// through the standard table/CSV/JSON sinks. Every simulation is
/// submitted in a deterministic order and collected in submission order,
/// and the annealing chain draws from one seeded SplitMix64 on the main
/// thread, so the report is byte-identical for any --jobs value.
///
/// Usage:
///   placement-opt [options]
///   placement-opt --mesh 4x4 --mcs 2 --apps mgrid   # exhaustive, seconds
///
//===----------------------------------------------------------------------===//

#include "harness/BenchSuite.h"
#include "support/Format.h"
#include "support/Options.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace offchip;

namespace {

//===----------------------------------------------------------------------===//
// Candidate space
//===----------------------------------------------------------------------===//

/// A candidate placement: a sorted list of distinct node ids (the canonical
/// form — the hardware interleave maps residue i to list slot i, but for
/// the ungrouped M1 mapping any order of one node set is the same machine,
/// so the search space is node *sets*).
using Candidate = std::vector<unsigned>;

/// C(Nodes, MCs), capped at \p Cap so an 8x8 space never overflows
/// (C(64,4) already exceeds half a million).
std::uint64_t chooseCapped(std::uint64_t Nodes, std::uint64_t MCs,
                           std::uint64_t Cap) {
  if (MCs > Nodes)
    return 0;
  std::uint64_t R = 1;
  for (std::uint64_t I = 0; I < MCs; ++I) {
    R = R * (Nodes - I) / (I + 1);
    if (R > Cap)
      return Cap + 1;
  }
  return R;
}

/// Lexicographic successor of a sorted combination over [0, Nodes);
/// \returns false once the last combination has been visited.
bool nextCombination(Candidate &C, unsigned Nodes) {
  unsigned M = static_cast<unsigned>(C.size());
  for (unsigned I = M; I-- > 0;) {
    if (C[I] + 1 <= Nodes - (M - I)) {
      ++C[I];
      for (unsigned J = I + 1; J < M; ++J)
        C[J] = C[J - 1] + 1;
      return true;
    }
  }
  return false;
}

/// A uniform draw of MCs distinct nodes (sorted), via partial Fisher-Yates.
Candidate randomCandidate(SplitMix64 &R, unsigned Nodes, unsigned MCs) {
  std::vector<unsigned> All(Nodes);
  for (unsigned I = 0; I < Nodes; ++I)
    All[I] = I;
  for (unsigned I = 0; I < MCs; ++I)
    std::swap(All[I],
              All[I + static_cast<unsigned>(R.nextBelow(Nodes - I))]);
  Candidate C(All.begin(), All.begin() + MCs);
  std::sort(C.begin(), C.end());
  return C;
}

/// Mutates one MC of \p Base to a random unused node (the annealing move).
Candidate mutateCandidate(SplitMix64 &R, const Candidate &Base,
                          unsigned Nodes) {
  Candidate C = Base;
  unsigned Slot = static_cast<unsigned>(R.nextBelow(C.size()));
  for (;;) {
    unsigned N = static_cast<unsigned>(R.nextBelow(Nodes));
    if (std::find(C.begin(), C.end(), N) == C.end()) {
      C[Slot] = N;
      break;
    }
  }
  std::sort(C.begin(), C.end());
  return C;
}

std::string candidateText(const Candidate &C) {
  std::string Out;
  for (unsigned N : C)
    Out += (Out.empty() ? "" : ",") + formatString("%u", N);
  return Out;
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

struct ToolOptions {
  MachineConfig Base;
  unsigned MCsPerCluster = 1;
  unsigned Jobs = 0;
  std::uint64_t Seed = 1;
  unsigned ExhaustiveThreshold = 256;
  unsigned AnnealRounds = 12;
  unsigned AnnealBatch = 8;
  double SizeScale = 1.0;
  double SearchScale = 0.25;
  std::vector<std::string> TableApps;  // default: all registered apps
  std::vector<std::string> SearchApps; // default: mgrid, art
};

/// The machine a candidate describes: the base config with an Explicit
/// placement over \p C.
MachineConfig candidateConfig(const ToolOptions &Opt, const Candidate &C) {
  MachineConfig Config = Opt.Base;
  Config.Placement = MCPlacementKind::Explicit;
  Config.MCNodes = C;
  return Config;
}

/// The feasibility oracle: validate() plus, for grouped mappings, the
/// contiguous-group tightness check.
bool feasible(const ToolOptions &Opt, const MachineConfig &Config) {
  if (!Config.validate().empty())
    return false;
  return Config.validateGrouping(Opt.MCsPerCluster).empty();
}

ClusterMapping mappingFor(const ToolOptions &Opt,
                          const MachineConfig &Config) {
  return Opt.MCsPerCluster == 1
             ? makeM1Mapping(Config)
             : makeM2Mapping(Config, Opt.MCsPerCluster);
}

/// Schedules the search-energy runs of one feasible config: the optimized
/// layout over every search app. The returned futures resolve to the runs
/// in app order.
std::vector<SimFuture>
submitEnergy(ExperimentRunner &Runner, const ToolOptions &Opt,
             const MachineConfig &Config,
             const std::vector<std::shared_ptr<const AppModel>> &Apps) {
  ClusterMapping Mapping = mappingFor(Opt, Config);
  std::vector<SimFuture> Futures;
  Futures.reserve(Apps.size());
  for (const std::shared_ptr<const AppModel> &App : Apps)
    Futures.push_back(
        Runner.submit(SimJob{App, Config, Mapping, RunVariant::Optimized}));
  return Futures;
}

/// Avg off-chip latency of one run: the network legs plus the MC queue and
/// bank service — the quantity the paper's Figure 14/16 decompose.
double offChipLatency(const SimResult &R) {
  return R.OffChipNetLatency.mean() + R.MemLatency.mean();
}

/// Mean search energy over the collected app runs.
double collectEnergy(const std::vector<SimFuture> &Futures) {
  double Sum = 0.0;
  for (const SimFuture &F : Futures)
    Sum += offChipLatency(F.get());
  return Futures.empty() ? 0.0 : Sum / static_cast<double>(Futures.size());
}

//===----------------------------------------------------------------------===//
// Pareto table
//===----------------------------------------------------------------------===//

struct TableRow {
  std::string Placement;
  std::string Layout;
  double OffChipLatency = 0.0;
  double Hops = 0.0;
  double LinkBusy = 0.0;
  bool Pareto = false;
};

/// Marks the rows no other row dominates (all three metrics minimized).
void markPareto(std::vector<TableRow> &Rows) {
  for (TableRow &R : Rows) {
    R.Pareto = true;
    for (const TableRow &O : Rows) {
      bool Dominates = O.OffChipLatency <= R.OffChipLatency &&
                       O.Hops <= R.Hops && O.LinkBusy <= R.LinkBusy &&
                       (O.OffChipLatency < R.OffChipLatency ||
                        O.Hops < R.Hops || O.LinkBusy < R.LinkBusy);
      if (Dominates) {
        R.Pareto = false;
        break;
      }
    }
  }
}

bool parseAppList(const std::string &Arg, std::vector<std::string> *Out) {
  const std::vector<std::string> &Known = appNames();
  std::vector<std::string> Parsed;
  std::string Cur;
  for (std::size_t I = 0; I <= Arg.size(); ++I) {
    if (I == Arg.size() || Arg[I] == ',') {
      if (!Cur.empty()) {
        if (std::find(Known.begin(), Known.end(), Cur) == Known.end()) {
          std::fprintf(stderr, "error: unknown app '%s'\n", Cur.c_str());
          return false;
        }
        Parsed.push_back(Cur);
        Cur.clear();
      }
    } else {
      Cur += Arg[I];
    }
  }
  if (Parsed.empty()) {
    std::fprintf(stderr, "error: app list selected no apps\n");
    return false;
  }
  *Out = std::move(Parsed);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opt;
  Opt.Base = MachineConfig::scaledDefault();
  // The fig03 sweeps run page interleaving (the OS-visible configuration
  // the paper's layout+allocation co-design targets); keep that default.
  Opt.Base.Granularity = InterleaveGranularity::Page;

  bool Csv = false, Json = false, Line = false;
  std::string AppsArg, SearchAppsArg;

  OptionsParser Options("placement-opt",
                        "joint MC-placement x layout search over the "
                        "paper's application models");
  Options.custom("--mesh", "<X>x<Y>",
                 [&](const std::string &V) {
                   unsigned X = 0, Y = 0;
                   if (std::sscanf(V.c_str(), "%ux%u", &X, &Y) != 2 ||
                       X == 0 || Y == 0)
                     return false;
                   Opt.Base.MeshX = X;
                   Opt.Base.MeshY = Y;
                   return true;
                 },
                 "mesh size (default 8x8)");
  Options.value("--mcs", &Opt.Base.NumMCs, "memory controllers (default 4)");
  Options.value("--mcs-per-cluster", &Opt.MCsPerCluster,
                "MCs per cluster, mapping M2 style; > 1 adds the "
                "contiguous-group tightness check to the feasibility "
                "oracle (default 1)");
  Options.flag("--line", &Line,
               "cache-line interleaving instead of the fig03 page default");
  Options.value("--jobs", &Opt.Jobs,
                "worker threads (0 = all cores; output is byte-identical "
                "for any value)");
  Options.custom("--seed", "<N>",
                 [&](const std::string &V) {
                   if (V.empty())
                     return false;
                   std::uint64_t N = 0;
                   for (char C : V) {
                     if (C < '0' || C > '9')
                       return false;
                     N = N * 10 + static_cast<unsigned>(C - '0');
                   }
                   Opt.Seed = N;
                   return true;
                 },
                 "annealing RNG seed (default 1)");
  Options.value("--exhaustive-threshold", &Opt.ExhaustiveThreshold,
                "enumerate every candidate when the space has at most this "
                "many node sets; anneal above it (default 256)");
  Options.value("--anneal-rounds", &Opt.AnnealRounds,
                "annealing rounds (default 12)");
  Options.value("--anneal-batch", &Opt.AnnealBatch,
                "proposals evaluated in parallel per round (default 8)");
  Options.custom("--size-scale", "<S>",
                 [&](const std::string &V) {
                   return std::sscanf(V.c_str(), "%lf", &Opt.SizeScale) ==
                              1 &&
                          Opt.SizeScale > 0;
                 },
                 "workload scale of the final Pareto table (default 1.0)");
  Options.custom("--search-scale", "<S>",
                 [&](const std::string &V) {
                   return std::sscanf(V.c_str(), "%lf",
                                      &Opt.SearchScale) == 1 &&
                          Opt.SearchScale > 0;
                 },
                 "workload scale of the search-energy runs (default 0.25)");
  Options.value("--apps", &AppsArg,
                "apps of the final Pareto table (default: all 13)");
  Options.value("--search-apps", &SearchAppsArg,
                "apps the search energy averages over (default mgrid,art)");
  Options.flag("--csv", &Csv, "emit CSV instead of aligned tables");
  Options.flag("--json", &Json, "emit a JSON report");

  std::string Err;
  bool WantedHelp = false;
  if (!Options.parse(Argc, Argv, &Err, &WantedHelp)) {
    if (WantedHelp) {
      std::fputs(Err.c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "error: %s\n%s", Err.c_str(),
                 Options.helpText().c_str());
    return 2;
  }
  if (Line)
    Opt.Base.Granularity = InterleaveGranularity::CacheLine;
  if (Csv && Json) {
    std::fprintf(stderr, "error: --csv and --json are mutually exclusive\n");
    return 2;
  }
  Opt.TableApps = appNames();
  if (!AppsArg.empty() && !parseAppList(AppsArg, &Opt.TableApps))
    return 2;
  Opt.SearchApps = {"mgrid", "art"};
  if (!SearchAppsArg.empty() &&
      !parseAppList(SearchAppsArg, &Opt.SearchApps))
    return 2;
  if (Opt.AnnealRounds < 1 || Opt.AnnealBatch < 1) {
    std::fprintf(stderr,
                 "error: --anneal-rounds and --anneal-batch must be >= 1\n");
    return 2;
  }

  // The base machine must be sound before any candidate is generated: the
  // oracle can only distinguish placements if mesh/MC geometry itself is
  // feasible. Validate under the Corners default so placement-independent
  // problems (bad mesh, no cluster grid) surface as diagnostics here.
  if (std::vector<ConfigDiagnostic> Diags = Opt.Base.validate();
      !Diags.empty()) {
    std::fprintf(stderr, "%s\n", renderDiagnostics(Diags).c_str());
    return 2;
  }
  unsigned Nodes = Opt.Base.numNodes();
  if (Opt.Base.NumMCs > Nodes) {
    std::fprintf(stderr,
                 "error: %u MCs cannot each have a node on a %u-node mesh\n",
                 Opt.Base.NumMCs, Nodes);
    return 2;
  }

  ExperimentRunner Runner(Opt.Jobs);

  // Shared immutable app models, one per (name, scale) used.
  std::map<std::pair<std::string, double>,
           std::shared_ptr<const AppModel>>
      AppCache;
  auto GetApp = [&](const std::string &Name,
                    double Scale) -> std::shared_ptr<const AppModel> {
    auto Key = std::make_pair(Name, Scale);
    auto It = AppCache.find(Key);
    if (It == AppCache.end())
      It = AppCache
               .emplace(Key, std::make_shared<AppModel>(
                                 buildApp(Name, Scale)))
               .first;
    return It->second;
  };
  std::vector<std::shared_ptr<const AppModel>> SearchModels;
  for (const std::string &Name : Opt.SearchApps)
    SearchModels.push_back(GetApp(Name, Opt.SearchScale));

  //===--------------------------------------------------------------------===//
  // Phase 1: the three built-in placements under the search energy. They
  // both calibrate the chain (annealing starts from the best one) and let
  // the report say whether the search actually beat them.
  //===--------------------------------------------------------------------===//

  struct BuiltIn {
    MCPlacementKind Kind;
    Candidate NodeSet; // sorted, for the energy cache
    double Energy = 0.0;
    bool Feasible = false;
  };
  std::vector<BuiltIn> BuiltIns;
  for (MCPlacementKind K :
       {MCPlacementKind::Corners, MCPlacementKind::EdgeMidpoints,
        MCPlacementKind::TopBottomSpread}) {
    BuiltIn B;
    B.Kind = K;
    MachineConfig C = Opt.Base;
    C.Placement = K;
    B.Feasible = C.validate().empty();
    if (B.Feasible) {
      B.NodeSet = C.placedMCNodes();
      std::sort(B.NodeSet.begin(), B.NodeSet.end());
    }
    BuiltIns.push_back(std::move(B));
  }
  {
    std::vector<std::pair<std::size_t, std::vector<SimFuture>>> Pending;
    for (std::size_t I = 0; I < BuiltIns.size(); ++I)
      if (BuiltIns[I].Feasible) {
        MachineConfig C = Opt.Base;
        C.Placement = BuiltIns[I].Kind;
        Pending.emplace_back(I,
                             submitEnergy(Runner, Opt, C, SearchModels));
      }
    for (auto &P : Pending)
      BuiltIns[P.first].Energy = collectEnergy(P.second);
  }

  //===--------------------------------------------------------------------===//
  // Phase 2: the search. Energies are cached by node set so revisits (and
  // built-in coincidences) cost nothing.
  //===--------------------------------------------------------------------===//

  std::map<Candidate, double> EnergyCache;
  for (const BuiltIn &B : BuiltIns)
    if (B.Feasible)
      EnergyCache[B.NodeSet] = B.Energy;

  Candidate Best;
  double BestEnergy = 0.0;
  bool HaveBest = false;
  auto Consider = [&](const Candidate &C, double E) {
    // Strict improvement only: ties keep the earlier (lexicographically
    // smaller under exhaustive order) candidate, deterministically.
    if (!HaveBest || E < BestEnergy) {
      Best = C;
      BestEnergy = E;
      HaveBest = true;
    }
  };

  std::uint64_t SpaceSize =
      chooseCapped(Nodes, Opt.Base.NumMCs, Opt.ExhaustiveThreshold);
  bool Exhaustive = SpaceSize <= Opt.ExhaustiveThreshold;
  std::uint64_t Evaluated = 0;

  if (Exhaustive) {
    // Enumerate in lexicographic order; submit every feasible candidate up
    // front, then collect in the same order.
    std::vector<Candidate> Feasibles;
    Candidate C(Opt.Base.NumMCs);
    for (unsigned I = 0; I < Opt.Base.NumMCs; ++I)
      C[I] = I;
    do {
      MachineConfig Config = candidateConfig(Opt, C);
      if (feasible(Opt, Config))
        Feasibles.push_back(C);
    } while (nextCombination(C, Nodes));
    std::vector<std::vector<SimFuture>> Futures;
    Futures.reserve(Feasibles.size());
    for (const Candidate &F : Feasibles)
      Futures.push_back(submitEnergy(
          Runner, Opt, candidateConfig(Opt, F), SearchModels));
    for (std::size_t I = 0; I < Feasibles.size(); ++I) {
      double E = collectEnergy(Futures[I]);
      EnergyCache[Feasibles[I]] = E;
      Consider(Feasibles[I], E);
    }
    Evaluated = Feasibles.size();
  } else {
    // Batch-synchronous simulated annealing: each round proposes
    // AnnealBatch mutations of the round-entry state, evaluates the
    // uncached ones in parallel, then walks the batch sequentially with
    // Metropolis acceptance. All randomness is drawn on this thread from
    // one seeded SplitMix64, so the chain is identical for any --jobs.
    SplitMix64 Rng(Opt.Seed);
    Candidate Current;
    double CurrentEnergy = 0.0;
    bool HaveCurrent = false;
    for (const BuiltIn &B : BuiltIns)
      if (B.Feasible && (!HaveCurrent || B.Energy < CurrentEnergy)) {
        Current = B.NodeSet;
        CurrentEnergy = B.Energy;
        HaveCurrent = true;
      }
    if (!HaveCurrent) {
      // No built-in fits this geometry (e.g. an odd MC count): start from
      // a random feasible draw instead.
      for (unsigned Tries = 0; Tries < 1000 && !HaveCurrent; ++Tries) {
        Candidate C = randomCandidate(Rng, Nodes, Opt.Base.NumMCs);
        MachineConfig Config = candidateConfig(Opt, C);
        if (!feasible(Opt, Config))
          continue;
        std::vector<SimFuture> F =
            submitEnergy(Runner, Opt, Config, SearchModels);
        Current = C;
        CurrentEnergy = collectEnergy(F);
        EnergyCache[Current] = CurrentEnergy;
        ++Evaluated;
        HaveCurrent = true;
      }
      if (!HaveCurrent) {
        std::fprintf(stderr,
                     "error: no feasible placement found in 1000 draws\n");
        return 1;
      }
    }
    Consider(Current, CurrentEnergy);

    // Relative-energy Metropolis: temperatures are fractions of the
    // current energy, so the schedule needs no prior latency scale.
    const double T0 = 0.05, T1 = 0.005;
    for (unsigned Round = 0; Round < Opt.AnnealRounds; ++Round) {
      double Frac = Opt.AnnealRounds == 1
                        ? 0.0
                        : static_cast<double>(Round) /
                              static_cast<double>(Opt.AnnealRounds - 1);
      double T = T0 * std::pow(T1 / T0, Frac);
      std::vector<Candidate> Proposals;
      for (unsigned I = 0; I < Opt.AnnealBatch; ++I) {
        Candidate C = mutateCandidate(Rng, Current, Nodes);
        if (feasible(Opt, candidateConfig(Opt, C)))
          Proposals.push_back(std::move(C));
      }
      // Evaluate every uncached proposal in parallel (duplicates within
      // the batch submit once).
      std::vector<std::pair<Candidate, std::vector<SimFuture>>> Pending;
      for (const Candidate &C : Proposals) {
        if (EnergyCache.count(C))
          continue;
        bool InFlight = false;
        for (const auto &P : Pending)
          InFlight |= P.first == C;
        if (!InFlight)
          Pending.emplace_back(
              C, submitEnergy(Runner, Opt, candidateConfig(Opt, C),
                              SearchModels));
      }
      for (auto &P : Pending) {
        EnergyCache[P.first] = collectEnergy(P.second);
        ++Evaluated;
      }
      for (const Candidate &C : Proposals) {
        double E = EnergyCache.at(C);
        Consider(C, E);
        bool Accept = E < CurrentEnergy;
        if (!Accept && CurrentEnergy > 0.0) {
          double Penalty = (E - CurrentEnergy) / (T * CurrentEnergy);
          Accept = Rng.nextDouble() < std::exp(-Penalty);
        }
        if (Accept) {
          Current = C;
          CurrentEnergy = E;
        }
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Phase 3: the Pareto table. The three built-ins plus the searched
  // placement, each under both layouts, averaged over the table apps.
  //===--------------------------------------------------------------------===//

  std::vector<std::shared_ptr<const AppModel>> TableModels;
  for (const std::string &Name : Opt.TableApps)
    TableModels.push_back(GetApp(Name, Opt.SizeScale));

  struct TableEntry {
    std::string Label;
    MachineConfig Config;
  };
  std::vector<TableEntry> Entries;
  for (const BuiltIn &B : BuiltIns) {
    if (!B.Feasible)
      continue;
    MachineConfig C = Opt.Base;
    C.Placement = B.Kind;
    Entries.push_back({mcPlacementName(B.Kind), C});
  }
  Entries.push_back({"searched [" + candidateText(Best) + "]",
                     candidateConfig(Opt, Best)});

  struct PendingRow {
    std::string Placement;
    std::string Layout;
    std::vector<SimFuture> Futures;
  };
  std::vector<PendingRow> PendingRows;
  for (const TableEntry &E : Entries) {
    ClusterMapping Mapping = mappingFor(Opt, E.Config);
    for (RunVariant V : {RunVariant::Original, RunVariant::Optimized}) {
      PendingRow P;
      P.Placement = E.Label;
      P.Layout = V == RunVariant::Original ? "original" : "optimized";
      for (const std::shared_ptr<const AppModel> &App : TableModels)
        P.Futures.push_back(Runner.submit(SimJob{App, E.Config, Mapping, V}));
      PendingRows.push_back(std::move(P));
    }
  }

  std::vector<TableRow> Rows;
  for (PendingRow &P : PendingRows) {
    TableRow R;
    R.Placement = P.Placement;
    R.Layout = P.Layout;
    double N = static_cast<double>(P.Futures.size());
    for (const SimFuture &F : P.Futures) {
      const SimResult &S = F.get();
      R.OffChipLatency += offChipLatency(S) / N;
      R.Hops += S.OffChipMsgHops.mean() / N;
      R.LinkBusy += static_cast<double>(S.LinkBusyCycles) / N;
    }
    Rows.push_back(std::move(R));
  }
  markPareto(Rows);

  //===--------------------------------------------------------------------===//
  // Report
  //===--------------------------------------------------------------------===//

  std::unique_ptr<OutputSink> Sink =
      Csv ? makeCsvSink() : Json ? makeJsonSink() : makeTableSink();
  Sink->begin("placement-opt: joint MC-placement x layout search",
              "MC placement is a first-order lever next to the paper's "
              "layout transformation (ROADMAP item 4)",
              Opt.Base.summary());
  Sink->meta("seed", formatString("%llu",
                                  static_cast<unsigned long long>(Opt.Seed)));
  Sink->meta("mode", std::string("\"") +
                         (Exhaustive ? "exhaustive" : "annealing") + "\"");
  Sink->meta("candidates_evaluated",
             formatString("%llu",
                          static_cast<unsigned long long>(Evaluated)));
  Sink->meta("search_energy",
             "\"avg off-chip latency, optimized layout, apps: " +
                 [&] {
                   std::string S;
                   for (const std::string &A : Opt.SearchApps)
                     S += (S.empty() ? "" : ",") + A;
                   return S;
                 }() +
                 "\"");
  Sink->columns({{"placement", 34},
                 {"layout", 10},
                 {"offchip-lat", 12},
                 {"hops", 8},
                 {"link-busy", 14},
                 {"pareto", 7}});
  for (const TableRow &R : Rows)
    Sink->row({R.Placement, R.Layout,
               formatString("%.2f", R.OffChipLatency),
               formatString("%.2f", R.Hops),
               formatString("%.0f", R.LinkBusy),
               R.Pareto ? "yes" : "no"});

  // The headline: did the search find a placement the built-ins miss?
  double BestBuiltIn = 0.0;
  std::string BestBuiltInName;
  for (const BuiltIn &B : BuiltIns)
    if (B.Feasible &&
        (BestBuiltInName.empty() || B.Energy < BestBuiltIn)) {
      BestBuiltIn = B.Energy;
      BestBuiltInName = mcPlacementName(B.Kind);
    }
  Sink->note("");
  if (BestBuiltInName.empty())
    Sink->note("no built-in placement fits this geometry; searched "
               "placement reported alone");
  else if (BestEnergy < BestBuiltIn)
    Sink->note(formatString(
        "search beats the best built-in (%s) on search energy: %.2f vs "
        "%.2f (-%.1f%%)",
        BestBuiltInName.c_str(), BestEnergy, BestBuiltIn,
        100.0 * (BestBuiltIn - BestEnergy) / BestBuiltIn));
  else
    Sink->note(formatString(
        "search matches but does not beat the best built-in (%s): %.2f vs "
        "%.2f",
        BestBuiltInName.c_str(), BestEnergy, BestBuiltIn));
  Sink->end();
  return 0;
}
