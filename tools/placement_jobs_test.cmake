# Runs placement-opt with the same seed at --jobs 1/2/8 and requires the
# three reports to be byte-identical — the annealing chain draws all its
# randomness on the submitting thread and results are collected in
# submission order, so worker count must never leak into the output.
#
# Expects: -DPLACEMENT_OPT=<binary> -DWORK_DIR=<scratch dir>
#          -DARGS=<semicolon-separated common arguments>

file(MAKE_DIRECTORY ${WORK_DIR})

foreach(JOBS 1 2 8)
  execute_process(
    COMMAND ${PLACEMENT_OPT} ${ARGS} --jobs ${JOBS}
    OUTPUT_FILE ${WORK_DIR}/jobs${JOBS}.txt
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "placement-opt --jobs ${JOBS} exited with ${RC}")
  endif()
endforeach()

foreach(JOBS 2 8)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/jobs1.txt ${WORK_DIR}/jobs${JOBS}.txt
    RESULT_VARIABLE DIFF)
  if(NOT DIFF EQUAL 0)
    message(FATAL_ERROR
            "placement-opt output differs between --jobs 1 and --jobs "
            "${JOBS}: ${WORK_DIR}/jobs1.txt vs ${WORK_DIR}/jobs${JOBS}.txt")
  endif()
endforeach()
