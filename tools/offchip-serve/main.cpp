//===- tools/offchip-serve/main.cpp - optimization service daemon ----------===//
///
/// Long-running optimize/simulate service speaking the line-delimited JSON
/// protocol of api/Serialize.h over TCP. Each connection may pipeline any
/// number of requests; answers carry the request id, so ordering is free.
/// Concurrency, admission control and the content-addressed result cache
/// live in api/Service.h — this binary is flag parsing, signal wiring and
/// an exit code.
///
/// Try it:
///   offchip-serve --port 7411 &
///   printf '%s\n' '{"id":"r1","method":"optimize","app":"swim"}' |
///     nc -q 1 127.0.0.1 7411
///
/// SIGINT/SIGTERM stop accepting, drain every admitted request, flush all
/// responses, and exit 0.
///
//===----------------------------------------------------------------------===//

#include "api/SocketServer.h"
#include "support/Options.h"

#include <csignal>
#include <cstdio>
#include <fstream>

using namespace offchip;

namespace {

SocketServer *ActiveServer = nullptr;

void onSignal(int) {
  // Async-signal-safe: requestStop only writes one byte to a pipe.
  if (ActiveServer)
    ActiveServer->requestStop();
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions Net;
  Net.Port = 7411;
  ServiceOptions Svc;
  std::string PortFile;

  OptionsParser Options("offchip-serve",
                        "optimization service over line-delimited JSON/TCP");
  Options.value("--host", &Net.Host, "address to bind (default 127.0.0.1)");
  Options.value("--port", &Net.Port,
                "TCP port (default 7411; 0 picks an ephemeral port)");
  Options.value("--port-file", &PortFile,
                "write the bound port to this file once listening (handy "
                "with --port 0)");
  unsigned Jobs = 0;
  Options.value("--jobs", &Jobs,
                "simulation worker threads (default 0 = all cores)");
  unsigned QueueDepth = 64, CacheEntries = 256;
  Options.value("--queue-depth", &QueueDepth,
                "admitted-but-unanswered request bound before new requests "
                "are answered 'overloaded' (default 64)");
  Options.value("--cache-entries", &CacheEntries,
                "result cache capacity in entries; 0 disables caching "
                "(default 256)");

  std::string Err;
  bool WantedHelp = false;
  if (!Options.parse(Argc, Argv, &Err, &WantedHelp)) {
    if (WantedHelp) {
      std::fputs(Err.c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "error: %s\n%s", Err.c_str(),
                 Options.helpText().c_str());
    return 2;
  }
  if (!Options.positional().empty()) {
    std::fprintf(stderr, "error: unexpected positional argument\n%s",
                 Options.helpText().c_str());
    return 2;
  }

  Svc.Workers = Jobs;
  Svc.QueueDepth = static_cast<std::size_t>(QueueDepth);
  Svc.CacheCapacity = static_cast<std::size_t>(CacheEntries);

  SimService Service(Svc);
  SocketServer Server(Service, Net);
  if (!Server.start(&Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (!PortFile.empty()) {
    std::ofstream Out(PortFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write port file '%s'\n",
                   PortFile.c_str());
      return 1;
    }
    Out << Server.port() << "\n";
  }

  ActiveServer = &Server;
  struct sigaction SA = {};
  SA.sa_handler = onSignal;
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
  // A client vanishing mid-write must not kill the daemon.
  signal(SIGPIPE, SIG_IGN);

  std::printf("offchip-serve: listening on %s:%u (%u workers, queue %llu, "
              "cache %llu)\n",
              Net.Host.c_str(), Server.port(), Service.workers(),
              static_cast<unsigned long long>(QueueDepth),
              static_cast<unsigned long long>(CacheEntries));
  std::fflush(stdout);

  Server.run(); // until SIGINT/SIGTERM; drains in-flight work

  SimService::Stats S = Service.stats();
  SocketServer::Counters C = Server.counters();
  std::printf("offchip-serve: drained — %llu requests on %llu connections "
              "(%llu completed, %llu overloaded, cache %llu/%llu hits)\n",
              static_cast<unsigned long long>(C.Requests),
              static_cast<unsigned long long>(C.Connections),
              static_cast<unsigned long long>(S.Completed),
              static_cast<unsigned long long>(S.Rejected),
              static_cast<unsigned long long>(S.Cache.Hits),
              static_cast<unsigned long long>(S.Cache.Hits + S.Cache.Misses));
  ActiveServer = nullptr;
  return 0;
}
