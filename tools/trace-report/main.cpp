//===- tools/trace-report/main.cpp - trace time-series summarizer ---------===//
///
/// Reads the compact time-series CSV dumps the tracing subsystem writes
/// (--trace on any bench or offchip-opt --simulate) and prints the summary
/// tables: the per-link utilization heatmap, per-MC queue-depth percentiles,
/// and the requester->MC distance histogram that cross-checks the paper's
/// Figure 13/15 aggregates.
///
/// Usage:
///   trace-report <run.series.csv> [more.series.csv ...]
///
//===----------------------------------------------------------------------===//

#include "support/Options.h"
#include "trace/TimeSeries.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace offchip;

int main(int Argc, char **Argv) {
  OptionsParser Options("trace-report",
                        "summarizes --trace time-series dumps (link "
                        "utilization, MC queue depth, request distances)");
  Options.positionalHelp("<run.series.csv>...");

  std::string Err;
  bool WantedHelp = false;
  if (!Options.parse(Argc, Argv, &Err, &WantedHelp)) {
    if (WantedHelp) {
      std::fputs(Err.c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "error: %s\n%s", Err.c_str(),
                 Options.helpText().c_str());
    return 2;
  }
  if (Options.positional().empty()) {
    std::fprintf(stderr, "error: expected at least one <run.series.csv>\n%s",
                 Options.helpText().c_str());
    return 2;
  }

  for (const std::string &Path : Options.positional()) {
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();

    TraceData D;
    if (!parseTimeSeriesCsv(SS.str(), D, &Err)) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
      return 1;
    }
    std::printf("==== %s ====\n%s\n", Path.c_str(),
                renderTraceReport(D).c_str());
  }
  return 0;
}
