#!/usr/bin/env bash
# Service smoke: boot offchip-serve on an ephemeral port, drive it with
# offchip-storm --verify (every served response re-checked against a direct
# in-process run), then SIGTERM the daemon and require a graceful drain —
# exit 0 and the "drained" summary line. Usage:
#   serve_smoke.sh <offchip-serve> <offchip-storm> <workdir>
set -u

# Resolve the binaries before cd'ing into the work dir so relative paths
# keep working.
SERVE=$(realpath "$1")
STORM=$(realpath "$2")
WORK=$3

mkdir -p "$WORK"
cd "$WORK"
rm -f port.txt serve.log BENCH_serve.json

# --jobs 2: single-flight merging needs a second worker to observe the
# leader in flight (a 1-worker pool serialises duplicates into cache hits),
# so don't let a 1-core host default the pool down to one thread.
"$SERVE" --port 0 --port-file port.txt --cache-entries 64 --jobs 2 \
  >serve.log 2>&1 &
SERVE_PID=$!
trap 'kill -9 $SERVE_PID 2>/dev/null' EXIT

for _ in $(seq 1 100); do
  [ -s port.txt ] && break
  sleep 0.1
done
if [ ! -s port.txt ]; then
  echo "FAIL: daemon never published its port" >&2
  cat serve.log >&2
  exit 1
fi
PORT=$(cat port.txt)

if ! "$STORM" --port "$PORT" --levels 1,2 --requests 6 \
      --duplicate-ratio 0.75 --verify --out BENCH_serve.json; then
  echo "FAIL: storm reported errors or verify failures" >&2
  exit 1
fi

# With 75% duplicated content and two concurrent clients sending the same
# bytes, at least one latecomer must have attached to an in-flight leader.
# Zero merges across the whole run means single-flight is broken (or the
# daemon ran single-worker, which the --jobs 2 above rules out).
if ! python3 - <<'EOF'
import json, sys
doc = json.load(open("BENCH_serve.json"))
sf = sum(int(l.get("singleflight_hits", 0)) for l in doc["levels"])
print(f"singleflight_hits total: {sf}")
sys.exit(0 if sf > 0 else 1)
EOF
then
  echo "FAIL: no single-flight merges despite --duplicate-ratio 0.75" >&2
  exit 1
fi

kill -TERM $SERVE_PID
RC=0
wait $SERVE_PID || RC=$?
trap - EXIT
if [ $RC -ne 0 ]; then
  echo "FAIL: daemon exited $RC after SIGTERM (want 0)" >&2
  cat serve.log >&2
  exit 1
fi
if ! grep -q "drained" serve.log; then
  echo "FAIL: no drain summary in daemon output" >&2
  cat serve.log >&2
  exit 1
fi
if [ ! -s BENCH_serve.json ]; then
  echo "FAIL: storm wrote no BENCH_serve.json" >&2
  exit 1
fi
echo "serve smoke OK (port $PORT)"
