//===- tools/offchip-fuzz/main.cpp - differential simulator fuzzer --------===//
///
/// Seeded differential fuzzing of the simulation engines. Each trial draws
/// a random valid machine configuration and a random affine program, then
/// cross-checks the full SimResult for exact equality across
///
///   - the serial reference engine (--sim-threads 1),
///   - the conservative parallel engine at 2, 5 and 8 host threads,
///   - the Pow2Divider fast (shift/mask) vs. generic (div/mod) decode
///     paths on the identical configuration,
///
/// with the runtime invariant checker (MachineConfig::CheckInvariants)
/// armed on every run. A pending-repro file is written *before* each trial
/// and deleted on success, so even a crash or an invariant abort leaves the
/// offending configuration and program on disk. Result mismatches are
/// additionally shrunk to a minimal failing spec and printed as a
/// ready-to-paste GTest regression test.
///
/// Usage:
///   offchip-fuzz [--runs N] [--seed S] [--repro-out PATH] [--verbose]
///
//===----------------------------------------------------------------------===//

#include "affine/ProgramText.h"
#include "harness/Experiment.h"
#include "sim/Engine.h"
#include "support/Options.h"
#include "support/Pow2.h"
#include "support/Random.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace offchip;

namespace {

//===----------------------------------------------------------------------===//
// Trial specification: everything needed to regenerate one trial exactly.
// Shrinking mutates this spec and re-renders, so the minimal repro is a
// spec, not an opaque RNG tape.
//===----------------------------------------------------------------------===//

/// One affine reference in the generated nest body. The data array is
/// square (Dim x Dim) and every nest iterates [0, Dim-1)^2, so subscripts
/// of the form ik or ik+1 always stay in bounds.
enum class RefKind {
  ReadRowMajor,    // read  a [ i0, i1 ]
  ReadColMajor,    // read  a [ i1, i0 ]
  ReadShifted,     // read  a [ i0+1, i1 ]
  WriteRowMajor,   // write a [ i0, i1 ]
  WriteShifted,    // write a [ i0, i1+1 ]
  GatherRead,      // gather-read a via x [ i0, i1 ]
  GatherWrite,     // gather-write a via x [ i0, i1 ]
};

struct NestSpec {
  std::vector<RefKind> Refs;
  unsigned ParallelDim = 0; // 0 or 1
  unsigned Repeat = 1;
};

struct TrialSpec {
  MachineConfig Config;
  /// Side of the square data array, in elements.
  unsigned Dim = 32;
  unsigned ElemBytes = 8;
  /// Index-array generator window for gathers; 0 = random generator.
  unsigned NearbyWindow = 16;
  std::uint64_t IndexSeed = 1;
  std::vector<NestSpec> Nests;
  /// Run the layout pass and simulate the optimized plan instead of the
  /// original row-major one.
  bool OptimizedLayout = false;

  bool usesGather() const {
    for (const NestSpec &N : Nests)
      for (RefKind R : N.Refs)
        if (R == RefKind::GatherRead || R == RefKind::GatherWrite)
          return true;
    return false;
  }
};

const char *refLine(RefKind K) {
  switch (K) {
  case RefKind::ReadRowMajor:
    return "  read  a [ i0, i1 ]";
  case RefKind::ReadColMajor:
    return "  read  a [ i1, i0 ]";
  case RefKind::ReadShifted:
    return "  read  a [ i0+1, i1 ]";
  case RefKind::WriteRowMajor:
    return "  write a [ i0, i1 ]";
  case RefKind::WriteShifted:
    return "  write a [ i0, i1+1 ]";
  case RefKind::GatherRead:
    return "  gather-read a via x [ i0, i1 ]";
  case RefKind::GatherWrite:
    return "  gather-write a via x [ i0, i1 ]";
  }
  return "";
}

std::string renderProgram(const TrialSpec &S) {
  std::string Out = "program fuzz\n";
  Out += "array a dims " + std::to_string(S.Dim) + " " +
         std::to_string(S.Dim) + " elem " + std::to_string(S.ElemBytes) +
         "\n";
  if (S.usesGather()) {
    Out += "array x dims " + std::to_string(S.Dim) + " " +
           std::to_string(S.Dim) + " elem 8\n";
    if (S.NearbyWindow != 0)
      Out += "index x nearby " + std::to_string(S.NearbyWindow) + " " +
             std::to_string(S.IndexSeed) + " for a\n";
    else
      Out += "index x random " + std::to_string(S.IndexSeed) + " for a\n";
  }
  std::string Hi = std::to_string(S.Dim - 1);
  for (std::size_t I = 0; I < S.Nests.size(); ++I) {
    const NestSpec &N = S.Nests[I];
    Out += "nest n" + std::to_string(I) + " bounds 0:" + Hi + " 0:" + Hi +
           " parallel " + std::to_string(N.ParallelDim);
    if (N.Repeat > 1)
      Out += " repeat " + std::to_string(N.Repeat);
    Out += "\n";
    for (RefKind R : N.Refs)
      Out += std::string(refLine(R)) + "\n";
    Out += "end\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Random generation
//===----------------------------------------------------------------------===//

template <typename T, std::size_t N>
T pick(SplitMix64 &R, const T (&Choices)[N]) {
  return Choices[R.nextBelow(N)];
}

/// --coherence: every trial draws MSI or MESI (and drops the incompatible
/// shared-L2/burst axes), concentrating the whole budget on protocol paths.
bool ForceCoherence = false;

MachineConfig randomConfig(SplitMix64 &R) {
  MachineConfig C = MachineConfig::scaledDefault();
  // Meshes beyond powers of two force the generic division path through the
  // shared-L2 home-bank and route decodes.
  static const unsigned MeshXs[] = {2, 3, 4, 5, 6, 8};
  static const unsigned MeshYs[] = {2, 3, 4, 6, 8};
  do {
    C.MeshX = pick(R, MeshXs);
    C.MeshY = pick(R, MeshYs);
  } while (C.MeshX * C.MeshY > 64);

  static const unsigned MCs[] = {2, 4, 4, 6, 8};
  C.NumMCs = pick(R, MCs);
  switch (R.nextBelow(4)) {
  case 0:
    C.Placement = MCPlacementKind::Corners;
    break;
  case 1:
    C.Placement = MCPlacementKind::EdgeMidpoints;
    break;
  case 2:
    C.Placement = MCPlacementKind::TopBottomSpread;
    break;
  default: {
    // Explicit: a random distinct node set, exercising the arbitrary
    // placements tools/placement-opt searches over. Falls back to Corners
    // when the mesh is too small to seat every MC on its own node.
    unsigned Nodes = C.MeshX * C.MeshY;
    if (C.NumMCs > Nodes) {
      C.Placement = MCPlacementKind::Corners;
      break;
    }
    C.Placement = MCPlacementKind::Explicit;
    std::vector<unsigned> All(Nodes);
    for (unsigned I = 0; I < Nodes; ++I)
      All[I] = I;
    // Partial Fisher-Yates: the first NumMCs entries are a uniform draw of
    // distinct nodes, in a seed-reproducible order.
    for (unsigned I = 0; I < C.NumMCs; ++I)
      std::swap(All[I], All[I + static_cast<unsigned>(
                                    R.nextBelow(Nodes - I))]);
    C.MCNodes.assign(All.begin(), All.begin() + C.NumMCs);
    break;
  }
  }

  static const unsigned L1Lines[] = {16, 32, 64};
  static const unsigned L1WaysC[] = {1, 2, 4};
  static const unsigned L1Sets[] = {4, 8, 16};
  C.L1LineBytes = pick(R, L1Lines);
  C.L1Ways = pick(R, L1WaysC);
  C.L1SizeBytes = static_cast<std::uint64_t>(C.L1LineBytes) * C.L1Ways *
                  pick(R, L1Sets);
  // A x3 multiplier yields a non-power-of-two L2 line (and interleave
  // unit), steering every address decode through the generic divider.
  static const unsigned L2Mult[] = {1, 2, 3, 4};
  static const unsigned L2WaysC[] = {2, 4};
  static const unsigned L2Sets[] = {8, 16, 32};
  C.L2LineBytes = C.L1LineBytes * pick(R, L2Mult);
  C.L2Ways = pick(R, L2WaysC);
  C.L2SizeBytes = static_cast<std::uint64_t>(C.L2LineBytes) * C.L2Ways *
                  pick(R, L2Sets);
  C.SharedL2 = R.nextBelow(2) == 0;

  if (R.nextBelow(2) == 0) {
    C.Granularity = InterleaveGranularity::Page;
    static const unsigned Pages[] = {256, 512, 1024};
    C.PageBytes = pick(R, Pages);
    switch (R.nextBelow(3)) {
    case 0:
      C.PagePolicy = PageAllocPolicy::InterleavedRoundRobin;
      break;
    case 1:
      C.PagePolicy = PageAllocPolicy::FirstTouch;
      break;
    default:
      C.PagePolicy = PageAllocPolicy::CompilerGuided;
      break;
    }
  }
  C.BytesPerMC = 1ull << 22;

  static const unsigned Links[] = {8, 16, 24};
  C.Noc.LinkBytes = pick(R, Links);
  static const unsigned Banks[] = {1, 2, 3, 4};
  static const unsigned Rows[] = {512, 768, 1024};
  C.Dram.Banks = pick(R, Banks);
  C.Dram.RowBufferBytes = pick(R, Rows);

  static const unsigned Gaps[] = {0, 4, 16};
  C.ComputeGapCycles = pick(R, Gaps);
  C.ThreadsPerCore = 1 + static_cast<unsigned>(R.nextBelow(2));
  C.OptimalScheme = R.nextBelow(4) == 0;

  // Burst coalescing reorders nothing but changes timing; it must stay
  // bit-identical across engines and hold the line-conservation invariant
  // (checkBurstConservation) on every draw.
  C.Burst.Enabled = R.nextBelow(2) == 0;
  static const unsigned Windows[] = {8, 32, 256};
  static const unsigned MaxLines[] = {2, 4, 8};
  C.Burst.WindowAccesses = pick(R, Windows);
  C.Burst.MaxLines = pick(R, MaxLines);

  // Coherence: MSI/MESI protocol traffic over the private-L2 machine, with
  // an optional bounded (sparse) directory. Incompatible with the shared L2
  // and with burst coalescing (validate rejects both combinations), so
  // those draws force the protocol off instead of skewing the rejection
  // sampling below.
  switch (ForceCoherence ? 1 + R.nextBelow(2) : R.nextBelow(4)) {
  case 1:
    C.Coherence.Protocol = MachineConfig::CoherenceProtocol::MSI;
    break;
  case 2:
    C.Coherence.Protocol = MachineConfig::CoherenceProtocol::MESI;
    break;
  default:
    break;
  }
  C.Coherence.SparseDirectory = R.nextBelow(2) == 0;
  C.Coherence.SparseEntries = 16u << R.nextBelow(6);
  if (ForceCoherence) {
    C.SharedL2 = false;
    C.Burst.Enabled = false;
  }
  if (C.SharedL2 || C.Burst.Enabled)
    C.Coherence.Protocol = MachineConfig::CoherenceProtocol::None;

  // Parallel-engine knobs: chunked mailbox publishes and shard-local
  // translation replicas amortize merger round trips but must never move a
  // single result bit at any setting.
  static const unsigned WindowBatches[] = {1, 4, 16, 256};
  C.SimWindowBatch = pick(R, WindowBatches);
  static const unsigned ReplicaEpochs[] = {0, 1, 4};
  C.SimReplicaEpochs = pick(R, ReplicaEpochs);
  C.CheckInvariants = true;
  return C;
}

TrialSpec randomSpec(SplitMix64 &R) {
  TrialSpec S;
  // Valid configurations are dense in the generator's space; rejection
  // sampling through validate() keeps the generator honest about the
  // validator instead of duplicating its rules.
  do {
    S.Config = randomConfig(R);
  } while (!S.Config.validate().empty());

  static const unsigned Dims[] = {24, 32, 40, 48};
  S.Dim = pick(R, Dims);
  S.ElemBytes = R.nextBelow(2) == 0 ? 8 : 4;
  S.NearbyWindow = R.nextBelow(3) == 0 ? 0 : 16;
  S.IndexSeed = 1 + R.nextBelow(1000);
  S.OptimizedLayout = R.nextBelow(2) == 0;

  unsigned NumNests = 1 + static_cast<unsigned>(R.nextBelow(2));
  for (unsigned N = 0; N < NumNests; ++N) {
    NestSpec Nest;
    Nest.ParallelDim = static_cast<unsigned>(R.nextBelow(2));
    Nest.Repeat = 1 + static_cast<unsigned>(R.nextBelow(2));
    unsigned NumRefs = 1 + static_cast<unsigned>(R.nextBelow(3));
    static const RefKind Kinds[] = {
        RefKind::ReadRowMajor, RefKind::ReadColMajor, RefKind::ReadShifted,
        RefKind::WriteRowMajor, RefKind::WriteShifted, RefKind::GatherRead,
        RefKind::GatherWrite};
    for (unsigned I = 0; I < NumRefs; ++I)
      Nest.Refs.push_back(pick(R, Kinds));
    S.Nests.push_back(std::move(Nest));
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Running one trial
//===----------------------------------------------------------------------===//

/// Renders the spec's config as C++ statements against a variable `C`,
/// listing every field the generator can move (defaults included, so the
/// snippet is self-contained).
std::string renderConfigCode(const MachineConfig &C) {
  auto U = [](std::uint64_t V) { return std::to_string(V); };
  std::string Out;
  Out += "  MachineConfig C = MachineConfig::scaledDefault();\n";
  Out += "  C.MeshX = " + U(C.MeshX) + ";\n";
  Out += "  C.MeshY = " + U(C.MeshY) + ";\n";
  Out += "  C.NumMCs = " + U(C.NumMCs) + ";\n";
  Out += std::string("  C.Placement = MCPlacementKind::") +
         (C.Placement == MCPlacementKind::Corners         ? "Corners"
          : C.Placement == MCPlacementKind::EdgeMidpoints ? "EdgeMidpoints"
          : C.Placement == MCPlacementKind::TopBottomSpread
              ? "TopBottomSpread"
              : "Explicit") +
         ";\n";
  if (C.Placement == MCPlacementKind::Explicit) {
    Out += "  C.MCNodes = {";
    for (std::size_t I = 0; I < C.MCNodes.size(); ++I)
      Out += (I == 0 ? "" : ", ") + U(C.MCNodes[I]);
    Out += "};\n";
  }
  Out += "  C.L1SizeBytes = " + U(C.L1SizeBytes) + ";\n";
  Out += "  C.L1LineBytes = " + U(C.L1LineBytes) + ";\n";
  Out += "  C.L1Ways = " + U(C.L1Ways) + ";\n";
  Out += "  C.L2SizeBytes = " + U(C.L2SizeBytes) + ";\n";
  Out += "  C.L2LineBytes = " + U(C.L2LineBytes) + ";\n";
  Out += "  C.L2Ways = " + U(C.L2Ways) + ";\n";
  Out += std::string("  C.SharedL2 = ") + (C.SharedL2 ? "true" : "false") +
         ";\n";
  Out += std::string("  C.Granularity = InterleaveGranularity::") +
         (C.Granularity == InterleaveGranularity::CacheLine ? "CacheLine"
                                                            : "Page") +
         ";\n";
  Out += "  C.PageBytes = " + U(C.PageBytes) + ";\n";
  Out += std::string("  C.PagePolicy = PageAllocPolicy::") +
         (C.PagePolicy == PageAllocPolicy::InterleavedRoundRobin
              ? "InterleavedRoundRobin"
              : C.PagePolicy == PageAllocPolicy::FirstTouch ? "FirstTouch"
                                                            : "CompilerGuided") +
         ";\n";
  Out += "  C.BytesPerMC = " + U(C.BytesPerMC) + ";\n";
  Out += "  C.Noc.LinkBytes = " + U(C.Noc.LinkBytes) + ";\n";
  Out += "  C.Dram.Banks = " + U(C.Dram.Banks) + ";\n";
  Out += "  C.Dram.RowBufferBytes = " + U(C.Dram.RowBufferBytes) + ";\n";
  Out += "  C.ComputeGapCycles = " + U(C.ComputeGapCycles) + ";\n";
  Out += "  C.ThreadsPerCore = " + U(C.ThreadsPerCore) + ";\n";
  Out += std::string("  C.OptimalScheme = ") +
         (C.OptimalScheme ? "true" : "false") + ";\n";
  Out += std::string("  C.Burst.Enabled = ") +
         (C.Burst.Enabled ? "true" : "false") + ";\n";
  Out += "  C.Burst.WindowAccesses = " + U(C.Burst.WindowAccesses) + ";\n";
  Out += "  C.Burst.MaxLines = " + U(C.Burst.MaxLines) + ";\n";
  Out += std::string("  C.Coherence.Protocol = "
                     "MachineConfig::CoherenceProtocol::") +
         (C.Coherence.Protocol == MachineConfig::CoherenceProtocol::None
              ? "None"
              : C.Coherence.Protocol == MachineConfig::CoherenceProtocol::MSI
                    ? "MSI"
                    : "MESI") +
         ";\n";
  Out += std::string("  C.Coherence.SparseDirectory = ") +
         (C.Coherence.SparseDirectory ? "true" : "false") + ";\n";
  Out += "  C.Coherence.SparseEntries = " + U(C.Coherence.SparseEntries) +
         ";\n";
  Out += "  C.SimWindowBatch = " + U(C.SimWindowBatch) + ";\n";
  Out += "  C.SimReplicaEpochs = " + U(C.SimReplicaEpochs) + ";\n";
  Out += "  C.CheckInvariants = true;\n";
  return Out;
}

/// What one trial compares; names the diverging leg on failure.
struct TrialOutcome {
  bool Diverged = false;
  std::string Leg;       // "sim-threads 5" or "generic division"
  std::string Field;     // first differing SimResult field
};

SimResult runVariant(const TrialSpec &S, const AffineProgram &Program,
                     const LayoutPlan &Plan, const ClusterMapping &Mapping,
                     unsigned SimThreads, bool ForceGeneric) {
  MachineConfig C = S.Config;
  C.SimThreads = SimThreads;
  // The flag is read at Pow2Divider construction time; every divider of
  // this run is built inside runSingle, after the flip.
  Pow2Divider::setForceGenericDivision(ForceGeneric);
  SimResult R = runSingle(Program, Plan, C, Mapping);
  Pow2Divider::setForceGenericDivision(false);
  return R;
}

TrialOutcome runTrial(const TrialSpec &S) {
  TrialOutcome Out;
  std::string Err;
  std::optional<AffineProgram> Program =
      parseProgramText(renderProgram(S), &Err);
  if (!Program) {
    // Generator bug, not a simulator bug — fail loudly.
    std::fprintf(stderr, "offchip-fuzz: generated unparsable program: %s\n",
                 Err.c_str());
    std::exit(3);
  }
  ClusterMapping Mapping = makeM1Mapping(S.Config);
  LayoutPlan Plan =
      S.OptimizedLayout
          ? LayoutTransformer(Mapping, S.Config.layoutOptions()).run(*Program)
          : LayoutTransformer::originalPlan(*Program);

  SimResult Serial = runVariant(S, *Program, Plan, Mapping, 1, false);

  for (unsigned T : {2u, 5u, 8u}) {
    SimResult Par = runVariant(S, *Program, Plan, Mapping, T, false);
    std::string Field;
    if (!equalResults(Serial, Par, &Field)) {
      Out.Diverged = true;
      Out.Leg = "sim-threads " + std::to_string(T);
      Out.Field = Field;
      return Out;
    }
  }

  SimResult Generic = runVariant(S, *Program, Plan, Mapping, 1, true);
  std::string Field;
  if (!equalResults(Serial, Generic, &Field)) {
    Out.Diverged = true;
    Out.Leg = "generic division";
    Out.Field = Field;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Shrinking
//===----------------------------------------------------------------------===//

/// Greedy shrink: try a list of simplifications, keeping each one that
/// still diverges, until a full pass changes nothing. Every probe re-runs
/// the whole differential, so the minimal spec fails exactly as reported.
TrialSpec shrink(TrialSpec S, TrialOutcome &Witness) {
  auto StillFails = [&Witness](const TrialSpec &Candidate) {
    if (!Candidate.Config.validate().empty())
      return false;
    TrialOutcome O = runTrial(Candidate);
    if (O.Diverged)
      Witness = O;
    return O.Diverged;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;

    // Structural shrinks: fewer nests, fewer refs, fewer iterations.
    for (std::size_t N = 0; N < S.Nests.size() && S.Nests.size() > 1; ++N) {
      TrialSpec C = S;
      C.Nests.erase(C.Nests.begin() + static_cast<std::ptrdiff_t>(N));
      if (StillFails(C)) {
        S = std::move(C);
        Changed = true;
        break;
      }
    }
    for (std::size_t N = 0; N < S.Nests.size(); ++N) {
      for (std::size_t R = 0; R < S.Nests[N].Refs.size(); ++R) {
        if (S.Nests[N].Refs.size() <= 1)
          break;
        TrialSpec C = S;
        C.Nests[N].Refs.erase(C.Nests[N].Refs.begin() +
                              static_cast<std::ptrdiff_t>(R));
        if (StillFails(C)) {
          S = std::move(C);
          Changed = true;
          break;
        }
      }
    }
    for (std::size_t N = 0; N < S.Nests.size(); ++N) {
      if (S.Nests[N].Repeat > 1) {
        TrialSpec C = S;
        C.Nests[N].Repeat = 1;
        if (StillFails(C)) {
          S = std::move(C);
          Changed = true;
        }
      }
    }
    while (S.Dim >= 16) {
      TrialSpec C = S;
      C.Dim = S.Dim / 2;
      if (!StillFails(C))
        break;
      S = std::move(C);
      Changed = true;
    }

    // Config shrinks: pull fields back toward the scaled default.
    const MachineConfig Def = MachineConfig::scaledDefault();
    auto TryConfig = [&](auto Mutate) {
      TrialSpec C = S;
      Mutate(C.Config);
      if (StillFails(C)) {
        S = std::move(C);
        Changed = true;
      }
    };
    if (S.OptimizedLayout) {
      TrialSpec C = S;
      C.OptimizedLayout = false;
      if (StillFails(C)) {
        S = std::move(C);
        Changed = true;
      }
    }
    if (S.Config.MeshX != 4 || S.Config.MeshY != 4)
      TryConfig([](MachineConfig &C) { C.MeshX = C.MeshY = 4; });
    if (S.Config.NumMCs != 4 ||
        S.Config.Placement != MCPlacementKind::Corners)
      TryConfig([](MachineConfig &C) {
        C.NumMCs = 4;
        C.Placement = MCPlacementKind::Corners;
        // A stale explicit list under a built-in kind is a validate()
        // error; the pull-back must drop both together.
        C.MCNodes.clear();
      });
    if (S.Config.ThreadsPerCore != 1)
      TryConfig([](MachineConfig &C) { C.ThreadsPerCore = 1; });
    if (S.Config.SharedL2)
      TryConfig([](MachineConfig &C) { C.SharedL2 = false; });
    if (S.Config.OptimalScheme)
      TryConfig([](MachineConfig &C) { C.OptimalScheme = false; });
    if (S.Config.Burst.Enabled)
      TryConfig([](MachineConfig &C) { C.Burst.Enabled = false; });
    if (S.Config.Coherence.enabled())
      TryConfig([](MachineConfig &C) {
        C.Coherence.Protocol = MachineConfig::CoherenceProtocol::None;
      });
    if (S.Config.Coherence.Protocol == MachineConfig::CoherenceProtocol::MESI)
      TryConfig([](MachineConfig &C) {
        C.Coherence.Protocol = MachineConfig::CoherenceProtocol::MSI;
      });
    if (S.Config.Coherence.SparseDirectory)
      TryConfig([](MachineConfig &C) {
        C.Coherence.SparseDirectory = false;
      });
    if (S.Config.Granularity != InterleaveGranularity::CacheLine)
      TryConfig([](MachineConfig &C) {
        C.Granularity = InterleaveGranularity::CacheLine;
        C.PagePolicy = PageAllocPolicy::InterleavedRoundRobin;
      });
    if (S.Config.L1SizeBytes != Def.L1SizeBytes ||
        S.Config.L1LineBytes != Def.L1LineBytes ||
        S.Config.L1Ways != Def.L1Ways)
      TryConfig([&Def](MachineConfig &C) {
        C.L1SizeBytes = Def.L1SizeBytes;
        C.L1LineBytes = Def.L1LineBytes;
        C.L1Ways = Def.L1Ways;
      });
    if (S.Config.L2SizeBytes != Def.L2SizeBytes ||
        S.Config.L2LineBytes != Def.L2LineBytes ||
        S.Config.L2Ways != Def.L2Ways)
      TryConfig([&Def](MachineConfig &C) {
        C.L2SizeBytes = Def.L2SizeBytes;
        C.L2LineBytes = Def.L2LineBytes;
        C.L2Ways = Def.L2Ways;
      });
    if (S.Config.Noc.LinkBytes != Def.Noc.LinkBytes ||
        S.Config.Dram.Banks != Def.Dram.Banks ||
        S.Config.Dram.RowBufferBytes != Def.Dram.RowBufferBytes)
      TryConfig([&Def](MachineConfig &C) {
        C.Noc = Def.Noc;
        C.Dram = Def.Dram;
      });
    if (S.Config.ComputeGapCycles != Def.ComputeGapCycles)
      TryConfig([&Def](MachineConfig &C) {
        C.ComputeGapCycles = Def.ComputeGapCycles;
      });
    if (S.Config.SimReplicaEpochs != 0)
      TryConfig([](MachineConfig &C) { C.SimReplicaEpochs = 0; });
    if (S.Config.SimWindowBatch != 1)
      TryConfig([](MachineConfig &C) { C.SimWindowBatch = 1; });
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Reporting
//===----------------------------------------------------------------------===//

std::string renderReproFile(const TrialSpec &S, std::uint64_t Seed,
                            unsigned Trial) {
  std::string Out;
  Out += "# offchip-fuzz pending repro (seed " + std::to_string(Seed) +
         ", trial " + std::to_string(Trial) + ")\n";
  Out += "# If this file survives a run, the trial below crashed or\n";
  Out += "# tripped the invariant checker. Re-run it with:\n";
  Out += "#   offchip-fuzz --seed " + std::to_string(Seed) + " --runs " +
         std::to_string(Trial + 1) + "\n";
  Out += "#\n# Machine configuration (C++):\n";
  std::string Code = renderConfigCode(S.Config);
  std::size_t Pos = 0;
  while (Pos < Code.size()) {
    std::size_t End = Code.find('\n', Pos);
    Out += "#" + Code.substr(Pos, End - Pos) + "\n";
    Pos = End + 1;
  }
  if (S.OptimizedLayout)
    Out += "#   (simulate the optimized layout plan)\n";
  Out += "#\n# Program:\n" + renderProgram(S);
  return Out;
}

void printRegressionTest(const TrialSpec &S, const TrialOutcome &O) {
  std::printf("\n==== minimal repro: %s diverged on %s ====\n",
              O.Leg.c_str(), O.Field.c_str());
  std::printf("---- paste into tests/fuzz_regression_test.cpp ----\n");
  std::printf("TEST(FuzzRegression, Shrunk) {\n");
  std::printf("%s", renderConfigCode(S.Config).c_str());
  std::printf("  const char *Text = R\"(\n%s)\";\n",
              renderProgram(S).c_str());
  std::printf("  std::optional<AffineProgram> P = parseProgramText(Text);\n");
  std::printf("  ASSERT_TRUE(P.has_value());\n");
  std::printf("  ClusterMapping M = makeM1Mapping(C);\n");
  if (S.OptimizedLayout)
    std::printf("  LayoutPlan Plan = "
                "LayoutTransformer(M, C.layoutOptions()).run(*P);\n");
  else
    std::printf(
        "  LayoutPlan Plan = LayoutTransformer::originalPlan(*P);\n");
  std::printf("  SimResult Serial = runSingle(*P, Plan, C, M);\n");
  if (O.Leg == "generic division") {
    std::printf("  Pow2Divider::setForceGenericDivision(true);\n");
    std::printf("  SimResult Other = runSingle(*P, Plan, C, M);\n");
    std::printf("  Pow2Divider::setForceGenericDivision(false);\n");
  } else {
    std::printf("  MachineConfig PC = C;\n");
    std::printf("  PC.SimThreads = %s;\n",
                O.Leg.substr(O.Leg.rfind(' ') + 1).c_str());
    std::printf("  SimResult Other = runSingle(*P, Plan, PC, M);\n");
  }
  std::printf("  std::string Why;\n");
  std::printf("  EXPECT_TRUE(equalResults(Serial, Other, &Why)) << Why;\n");
  std::printf("}\n");
  std::printf("---- end ----\n");
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Runs = 20;
  unsigned Seed = 1;
  bool Verbose = false;
  std::string ReproPath = "offchip-fuzz-repro.txt";

  OptionsParser Options("offchip-fuzz",
                        "differential fuzzer for the simulation engines");
  Options.value("--runs", &Runs, "trials to run (default 20)");
  Options.value("--seed", &Seed, "base RNG seed (default 1)");
  Options.value("--repro-out", &ReproPath,
                "pending-repro file path (default offchip-fuzz-repro.txt)");
  Options.flag("--verbose", &Verbose, "print every trial's configuration");
  Options.flag("--coherence", &ForceCoherence,
               "draw a coherence protocol (MSI or MESI) on every trial, "
               "dropping the incompatible shared-L2/burst axes");

  std::string Err;
  bool WantedHelp = false;
  if (!Options.parse(Argc, Argv, &Err, &WantedHelp)) {
    if (WantedHelp) {
      std::fputs(Err.c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "error: %s\n%s", Err.c_str(),
                 Options.helpText().c_str());
    return 2;
  }
  if (!Options.positional().empty()) {
    std::fprintf(stderr, "error: offchip-fuzz takes no positional args\n");
    return 2;
  }
  if (Runs == 0) {
    std::fprintf(stderr, "error: --runs must be >= 1\n");
    return 2;
  }

  for (unsigned Trial = 0; Trial < Runs; ++Trial) {
    // Each trial derives its own generator so a single trial can be re-run
    // in isolation (--seed S --runs N reproduces trial N-1 exactly).
    SplitMix64 R(0xf022ull * (Seed + 1) + 0x9e37ull * Trial);
    TrialSpec S = randomSpec(R);

    if (Verbose)
      std::printf("trial %u: %s dim %u nests %zu%s\n", Trial,
                  S.Config.summary().c_str(), S.Dim, S.Nests.size(),
                  S.OptimizedLayout ? " (optimized layout)" : "");

    // Persist the trial before running: an invariant-checker abort or a
    // crash cannot report through the process exit path, but the file it
    // leaves behind carries the full repro.
    {
      std::ofstream ReproFile(ReproPath, std::ios::trunc);
      ReproFile << renderReproFile(S, Seed, Trial);
    }

    TrialOutcome O = runTrial(S);
    if (O.Diverged) {
      std::printf("trial %u: %s diverged on %s; shrinking...\n", Trial,
                  O.Leg.c_str(), O.Field.c_str());
      TrialSpec Min = shrink(S, O);
      {
        std::ofstream ReproFile(ReproPath, std::ios::trunc);
        ReproFile << renderReproFile(Min, Seed, Trial);
      }
      printRegressionTest(Min, O);
      std::fprintf(stderr,
                   "offchip-fuzz: divergence at trial %u (seed %u); repro "
                   "kept in %s\n",
                   Trial, Seed, ReproPath.c_str());
      return 1;
    }
    std::remove(ReproPath.c_str());
  }
  std::printf("offchip-fuzz: %u trials clean (seed %u)\n", Runs, Seed);
  return 0;
}
