# Empty dependencies file for bench_fig22_shared_l2.
# This may be replaced when dependencies are built.
