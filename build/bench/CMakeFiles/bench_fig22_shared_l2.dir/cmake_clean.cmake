file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_shared_l2.dir/fig22_shared_l2.cpp.o"
  "CMakeFiles/bench_fig22_shared_l2.dir/fig22_shared_l2.cpp.o.d"
  "bench_fig22_shared_l2"
  "bench_fig22_shared_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_shared_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
