file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_mc_count.dir/fig20_mc_count.cpp.o"
  "CMakeFiles/bench_fig20_mc_count.dir/fig20_mc_count.cpp.o.d"
  "bench_fig20_mc_count"
  "bench_fig20_mc_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_mc_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
