# Empty dependencies file for bench_fig20_mc_count.
# This may be replaced when dependencies are built.
