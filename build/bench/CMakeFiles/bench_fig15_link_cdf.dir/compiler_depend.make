# Empty compiler generated dependencies file for bench_fig15_link_cdf.
# This may be replaced when dependencies are built.
