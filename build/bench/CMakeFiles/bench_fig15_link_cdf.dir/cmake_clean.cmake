file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_link_cdf.dir/fig15_link_cdf.cpp.o"
  "CMakeFiles/bench_fig15_link_cdf.dir/fig15_link_cdf.cpp.o.d"
  "bench_fig15_link_cdf"
  "bench_fig15_link_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_link_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
