# Empty dependencies file for bench_fig25_multiprog.
# This may be replaced when dependencies are built.
