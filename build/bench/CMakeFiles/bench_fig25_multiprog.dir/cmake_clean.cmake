file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_multiprog.dir/fig25_multiprog.cpp.o"
  "CMakeFiles/bench_fig25_multiprog.dir/fig25_multiprog.cpp.o.d"
  "bench_fig25_multiprog"
  "bench_fig25_multiprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_multiprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
