file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_optimal_scheme.dir/fig04_optimal_scheme.cpp.o"
  "CMakeFiles/bench_fig04_optimal_scheme.dir/fig04_optimal_scheme.cpp.o.d"
  "bench_fig04_optimal_scheme"
  "bench_fig04_optimal_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_optimal_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
