# Empty compiler generated dependencies file for bench_fig04_optimal_scheme.
# This may be replaced when dependencies are built.
