# Empty compiler generated dependencies file for bench_fig19_mc_placement.
# This may be replaced when dependencies are built.
