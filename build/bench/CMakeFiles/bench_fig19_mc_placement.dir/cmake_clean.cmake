file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_mc_placement.dir/fig19_mc_placement.cpp.o"
  "CMakeFiles/bench_fig19_mc_placement.dir/fig19_mc_placement.cpp.o.d"
  "bench_fig19_mc_placement"
  "bench_fig19_mc_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_mc_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
