# Empty compiler generated dependencies file for bench_fig18_bank_queue.
# This may be replaced when dependencies are built.
