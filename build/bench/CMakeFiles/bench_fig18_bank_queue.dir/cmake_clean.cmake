file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_bank_queue.dir/fig18_bank_queue.cpp.o"
  "CMakeFiles/bench_fig18_bank_queue.dir/fig18_bank_queue.cpp.o.d"
  "bench_fig18_bank_queue"
  "bench_fig18_bank_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_bank_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
