file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_traffic_map.dir/fig13_traffic_map.cpp.o"
  "CMakeFiles/bench_fig13_traffic_map.dir/fig13_traffic_map.cpp.o.d"
  "bench_fig13_traffic_map"
  "bench_fig13_traffic_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_traffic_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
