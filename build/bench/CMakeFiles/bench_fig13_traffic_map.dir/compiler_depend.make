# Empty compiler generated dependencies file for bench_fig13_traffic_map.
# This may be replaced when dependencies are built.
