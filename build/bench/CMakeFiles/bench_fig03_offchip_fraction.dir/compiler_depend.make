# Empty compiler generated dependencies file for bench_fig03_offchip_fraction.
# This may be replaced when dependencies are built.
