file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_offchip_fraction.dir/fig03_offchip_fraction.cpp.o"
  "CMakeFiles/bench_fig03_offchip_fraction.dir/fig03_offchip_fraction.cpp.o.d"
  "bench_fig03_offchip_fraction"
  "bench_fig03_offchip_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_offchip_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
