file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_first_touch.dir/fig23_first_touch.cpp.o"
  "CMakeFiles/bench_fig23_first_touch.dir/fig23_first_touch.cpp.o.d"
  "bench_fig23_first_touch"
  "bench_fig23_first_touch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_first_touch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
