# Empty dependencies file for bench_fig23_first_touch.
# This may be replaced when dependencies are built.
