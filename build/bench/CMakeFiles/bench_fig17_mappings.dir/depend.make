# Empty dependencies file for bench_fig17_mappings.
# This may be replaced when dependencies are built.
