file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_mappings.dir/fig17_mappings.cpp.o"
  "CMakeFiles/bench_fig17_mappings.dir/fig17_mappings.cpp.o.d"
  "bench_fig17_mappings"
  "bench_fig17_mappings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_mappings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
