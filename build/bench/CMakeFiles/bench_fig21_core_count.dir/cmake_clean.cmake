file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_core_count.dir/fig21_core_count.cpp.o"
  "CMakeFiles/bench_fig21_core_count.dir/fig21_core_count.cpp.o.d"
  "bench_fig21_core_count"
  "bench_fig21_core_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_core_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
