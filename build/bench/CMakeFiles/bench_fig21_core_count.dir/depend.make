# Empty dependencies file for bench_fig21_core_count.
# This may be replaced when dependencies are built.
