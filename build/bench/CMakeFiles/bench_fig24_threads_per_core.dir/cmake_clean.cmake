file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_threads_per_core.dir/fig24_threads_per_core.cpp.o"
  "CMakeFiles/bench_fig24_threads_per_core.dir/fig24_threads_per_core.cpp.o.d"
  "bench_fig24_threads_per_core"
  "bench_fig24_threads_per_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_threads_per_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
