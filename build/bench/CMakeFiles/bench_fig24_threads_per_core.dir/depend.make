# Empty dependencies file for bench_fig24_threads_per_core.
# This may be replaced when dependencies are built.
