# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig24_threads_per_core.
