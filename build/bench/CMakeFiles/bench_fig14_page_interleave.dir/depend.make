# Empty dependencies file for bench_fig14_page_interleave.
# This may be replaced when dependencies are built.
