file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_page_interleave.dir/fig14_page_interleave.cpp.o"
  "CMakeFiles/bench_fig14_page_interleave.dir/fig14_page_interleave.cpp.o.d"
  "bench_fig14_page_interleave"
  "bench_fig14_page_interleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_page_interleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
