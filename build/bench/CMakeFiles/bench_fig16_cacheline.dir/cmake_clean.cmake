file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_cacheline.dir/fig16_cacheline.cpp.o"
  "CMakeFiles/bench_fig16_cacheline.dir/fig16_cacheline.cpp.o.d"
  "bench_fig16_cacheline"
  "bench_fig16_cacheline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_cacheline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
