file(REMOVE_RECURSE
  "CMakeFiles/test_programtext.dir/programtext_test.cpp.o"
  "CMakeFiles/test_programtext.dir/programtext_test.cpp.o.d"
  "test_programtext"
  "test_programtext.pdb"
  "test_programtext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_programtext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
