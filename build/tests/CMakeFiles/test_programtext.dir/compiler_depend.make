# Empty compiler generated dependencies file for test_programtext.
# This may be replaced when dependencies are built.
