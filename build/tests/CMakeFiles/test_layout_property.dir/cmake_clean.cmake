file(REMOVE_RECURSE
  "CMakeFiles/test_layout_property.dir/layout_property_test.cpp.o"
  "CMakeFiles/test_layout_property.dir/layout_property_test.cpp.o.d"
  "test_layout_property"
  "test_layout_property.pdb"
  "test_layout_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
