# Empty dependencies file for test_layout_property.
# This may be replaced when dependencies are built.
