
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/test_sim.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/offchip_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/offchip_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/offchip_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/offchip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/offchip_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/offchip_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/offchip_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/offchip_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/affine/CMakeFiles/offchip_affine.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/offchip_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/offchip_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
