# Empty compiler generated dependencies file for test_vm.
# This may be replaced when dependencies are built.
