file(REMOVE_RECURSE
  "CMakeFiles/test_vm.dir/vm_test.cpp.o"
  "CMakeFiles/test_vm.dir/vm_test.cpp.o.d"
  "test_vm"
  "test_vm.pdb"
  "test_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
