file(REMOVE_RECURSE
  "CMakeFiles/test_affine.dir/affine_test.cpp.o"
  "CMakeFiles/test_affine.dir/affine_test.cpp.o.d"
  "test_affine"
  "test_affine.pdb"
  "test_affine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_affine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
