# Empty compiler generated dependencies file for test_affine.
# This may be replaced when dependencies are built.
