# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_affine[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_programtext[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_layout_property[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
