file(REMOVE_RECURSE
  "CMakeFiles/shared_vs_private.dir/shared_vs_private.cpp.o"
  "CMakeFiles/shared_vs_private.dir/shared_vs_private.cpp.o.d"
  "shared_vs_private"
  "shared_vs_private.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_vs_private.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
