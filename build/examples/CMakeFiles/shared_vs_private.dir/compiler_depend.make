# Empty compiler generated dependencies file for shared_vs_private.
# This may be replaced when dependencies are built.
