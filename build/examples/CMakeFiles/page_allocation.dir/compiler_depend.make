# Empty compiler generated dependencies file for page_allocation.
# This may be replaced when dependencies are built.
