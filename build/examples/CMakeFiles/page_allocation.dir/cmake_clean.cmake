file(REMOVE_RECURSE
  "CMakeFiles/page_allocation.dir/page_allocation.cpp.o"
  "CMakeFiles/page_allocation.dir/page_allocation.cpp.o.d"
  "page_allocation"
  "page_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
