file(REMOVE_RECURSE
  "CMakeFiles/mapping_explorer.dir/mapping_explorer.cpp.o"
  "CMakeFiles/mapping_explorer.dir/mapping_explorer.cpp.o.d"
  "mapping_explorer"
  "mapping_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
