# Empty dependencies file for mapping_explorer.
# This may be replaced when dependencies are built.
