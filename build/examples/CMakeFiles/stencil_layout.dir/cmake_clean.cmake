file(REMOVE_RECURSE
  "CMakeFiles/stencil_layout.dir/stencil_layout.cpp.o"
  "CMakeFiles/stencil_layout.dir/stencil_layout.cpp.o.d"
  "stencil_layout"
  "stencil_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
