# Empty compiler generated dependencies file for stencil_layout.
# This may be replaced when dependencies are built.
