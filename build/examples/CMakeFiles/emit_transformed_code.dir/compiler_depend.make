# Empty compiler generated dependencies file for emit_transformed_code.
# This may be replaced when dependencies are built.
