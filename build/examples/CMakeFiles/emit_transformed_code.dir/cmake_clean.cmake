file(REMOVE_RECURSE
  "CMakeFiles/emit_transformed_code.dir/emit_transformed_code.cpp.o"
  "CMakeFiles/emit_transformed_code.dir/emit_transformed_code.cpp.o.d"
  "emit_transformed_code"
  "emit_transformed_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emit_transformed_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
