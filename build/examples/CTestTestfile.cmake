# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stencil_layout "/root/repo/build/examples/stencil_layout")
set_tests_properties(example_stencil_layout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mapping_explorer "/root/repo/build/examples/mapping_explorer")
set_tests_properties(example_mapping_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shared_vs_private "/root/repo/build/examples/shared_vs_private")
set_tests_properties(example_shared_vs_private PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_page_allocation "/root/repo/build/examples/page_allocation")
set_tests_properties(example_page_allocation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_emit_transformed_code "/root/repo/build/examples/emit_transformed_code")
set_tests_properties(example_emit_transformed_code PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
