file(REMOVE_RECURSE
  "CMakeFiles/offchip_linalg.dir/IntLinAlg.cpp.o"
  "CMakeFiles/offchip_linalg.dir/IntLinAlg.cpp.o.d"
  "CMakeFiles/offchip_linalg.dir/IntMatrix.cpp.o"
  "CMakeFiles/offchip_linalg.dir/IntMatrix.cpp.o.d"
  "liboffchip_linalg.a"
  "liboffchip_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
