file(REMOVE_RECURSE
  "liboffchip_linalg.a"
)
