# Empty dependencies file for offchip_linalg.
# This may be replaced when dependencies are built.
