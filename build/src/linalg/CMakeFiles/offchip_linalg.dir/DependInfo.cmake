
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/IntLinAlg.cpp" "src/linalg/CMakeFiles/offchip_linalg.dir/IntLinAlg.cpp.o" "gcc" "src/linalg/CMakeFiles/offchip_linalg.dir/IntLinAlg.cpp.o.d"
  "/root/repo/src/linalg/IntMatrix.cpp" "src/linalg/CMakeFiles/offchip_linalg.dir/IntMatrix.cpp.o" "gcc" "src/linalg/CMakeFiles/offchip_linalg.dir/IntMatrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/offchip_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
