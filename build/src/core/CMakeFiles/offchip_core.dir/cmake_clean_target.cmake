file(REMOVE_RECURSE
  "liboffchip_core.a"
)
