file(REMOVE_RECURSE
  "CMakeFiles/offchip_core.dir/ClusterMapping.cpp.o"
  "CMakeFiles/offchip_core.dir/ClusterMapping.cpp.o.d"
  "CMakeFiles/offchip_core.dir/CodeGen.cpp.o"
  "CMakeFiles/offchip_core.dir/CodeGen.cpp.o.d"
  "CMakeFiles/offchip_core.dir/DataLayout.cpp.o"
  "CMakeFiles/offchip_core.dir/DataLayout.cpp.o.d"
  "CMakeFiles/offchip_core.dir/DataToCore.cpp.o"
  "CMakeFiles/offchip_core.dir/DataToCore.cpp.o.d"
  "CMakeFiles/offchip_core.dir/LayoutTransformer.cpp.o"
  "CMakeFiles/offchip_core.dir/LayoutTransformer.cpp.o.d"
  "CMakeFiles/offchip_core.dir/MappingSelector.cpp.o"
  "CMakeFiles/offchip_core.dir/MappingSelector.cpp.o.d"
  "liboffchip_core.a"
  "liboffchip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
