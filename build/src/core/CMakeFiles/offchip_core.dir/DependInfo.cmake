
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ClusterMapping.cpp" "src/core/CMakeFiles/offchip_core.dir/ClusterMapping.cpp.o" "gcc" "src/core/CMakeFiles/offchip_core.dir/ClusterMapping.cpp.o.d"
  "/root/repo/src/core/CodeGen.cpp" "src/core/CMakeFiles/offchip_core.dir/CodeGen.cpp.o" "gcc" "src/core/CMakeFiles/offchip_core.dir/CodeGen.cpp.o.d"
  "/root/repo/src/core/DataLayout.cpp" "src/core/CMakeFiles/offchip_core.dir/DataLayout.cpp.o" "gcc" "src/core/CMakeFiles/offchip_core.dir/DataLayout.cpp.o.d"
  "/root/repo/src/core/DataToCore.cpp" "src/core/CMakeFiles/offchip_core.dir/DataToCore.cpp.o" "gcc" "src/core/CMakeFiles/offchip_core.dir/DataToCore.cpp.o.d"
  "/root/repo/src/core/LayoutTransformer.cpp" "src/core/CMakeFiles/offchip_core.dir/LayoutTransformer.cpp.o" "gcc" "src/core/CMakeFiles/offchip_core.dir/LayoutTransformer.cpp.o.d"
  "/root/repo/src/core/MappingSelector.cpp" "src/core/CMakeFiles/offchip_core.dir/MappingSelector.cpp.o" "gcc" "src/core/CMakeFiles/offchip_core.dir/MappingSelector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/affine/CMakeFiles/offchip_affine.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/offchip_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/offchip_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/offchip_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
