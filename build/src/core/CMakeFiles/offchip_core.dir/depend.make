# Empty dependencies file for offchip_core.
# This may be replaced when dependencies are built.
