# Empty compiler generated dependencies file for offchip_support.
# This may be replaced when dependencies are built.
