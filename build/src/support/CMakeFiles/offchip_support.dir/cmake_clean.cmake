file(REMOVE_RECURSE
  "CMakeFiles/offchip_support.dir/Error.cpp.o"
  "CMakeFiles/offchip_support.dir/Error.cpp.o.d"
  "CMakeFiles/offchip_support.dir/Format.cpp.o"
  "CMakeFiles/offchip_support.dir/Format.cpp.o.d"
  "CMakeFiles/offchip_support.dir/Stats.cpp.o"
  "CMakeFiles/offchip_support.dir/Stats.cpp.o.d"
  "liboffchip_support.a"
  "liboffchip_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
