
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/Error.cpp" "src/support/CMakeFiles/offchip_support.dir/Error.cpp.o" "gcc" "src/support/CMakeFiles/offchip_support.dir/Error.cpp.o.d"
  "/root/repo/src/support/Format.cpp" "src/support/CMakeFiles/offchip_support.dir/Format.cpp.o" "gcc" "src/support/CMakeFiles/offchip_support.dir/Format.cpp.o.d"
  "/root/repo/src/support/Stats.cpp" "src/support/CMakeFiles/offchip_support.dir/Stats.cpp.o" "gcc" "src/support/CMakeFiles/offchip_support.dir/Stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
