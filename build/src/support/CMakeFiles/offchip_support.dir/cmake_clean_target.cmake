file(REMOVE_RECURSE
  "liboffchip_support.a"
)
