
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/affine/AffineProgram.cpp" "src/affine/CMakeFiles/offchip_affine.dir/AffineProgram.cpp.o" "gcc" "src/affine/CMakeFiles/offchip_affine.dir/AffineProgram.cpp.o.d"
  "/root/repo/src/affine/AffineRef.cpp" "src/affine/CMakeFiles/offchip_affine.dir/AffineRef.cpp.o" "gcc" "src/affine/CMakeFiles/offchip_affine.dir/AffineRef.cpp.o.d"
  "/root/repo/src/affine/IndexGen.cpp" "src/affine/CMakeFiles/offchip_affine.dir/IndexGen.cpp.o" "gcc" "src/affine/CMakeFiles/offchip_affine.dir/IndexGen.cpp.o.d"
  "/root/repo/src/affine/IndexProfile.cpp" "src/affine/CMakeFiles/offchip_affine.dir/IndexProfile.cpp.o" "gcc" "src/affine/CMakeFiles/offchip_affine.dir/IndexProfile.cpp.o.d"
  "/root/repo/src/affine/IterationSpace.cpp" "src/affine/CMakeFiles/offchip_affine.dir/IterationSpace.cpp.o" "gcc" "src/affine/CMakeFiles/offchip_affine.dir/IterationSpace.cpp.o.d"
  "/root/repo/src/affine/LoopNest.cpp" "src/affine/CMakeFiles/offchip_affine.dir/LoopNest.cpp.o" "gcc" "src/affine/CMakeFiles/offchip_affine.dir/LoopNest.cpp.o.d"
  "/root/repo/src/affine/ProgramText.cpp" "src/affine/CMakeFiles/offchip_affine.dir/ProgramText.cpp.o" "gcc" "src/affine/CMakeFiles/offchip_affine.dir/ProgramText.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/offchip_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/offchip_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
