file(REMOVE_RECURSE
  "liboffchip_affine.a"
)
