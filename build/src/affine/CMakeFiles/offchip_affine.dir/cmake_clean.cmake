file(REMOVE_RECURSE
  "CMakeFiles/offchip_affine.dir/AffineProgram.cpp.o"
  "CMakeFiles/offchip_affine.dir/AffineProgram.cpp.o.d"
  "CMakeFiles/offchip_affine.dir/AffineRef.cpp.o"
  "CMakeFiles/offchip_affine.dir/AffineRef.cpp.o.d"
  "CMakeFiles/offchip_affine.dir/IndexGen.cpp.o"
  "CMakeFiles/offchip_affine.dir/IndexGen.cpp.o.d"
  "CMakeFiles/offchip_affine.dir/IndexProfile.cpp.o"
  "CMakeFiles/offchip_affine.dir/IndexProfile.cpp.o.d"
  "CMakeFiles/offchip_affine.dir/IterationSpace.cpp.o"
  "CMakeFiles/offchip_affine.dir/IterationSpace.cpp.o.d"
  "CMakeFiles/offchip_affine.dir/LoopNest.cpp.o"
  "CMakeFiles/offchip_affine.dir/LoopNest.cpp.o.d"
  "CMakeFiles/offchip_affine.dir/ProgramText.cpp.o"
  "CMakeFiles/offchip_affine.dir/ProgramText.cpp.o.d"
  "liboffchip_affine.a"
  "liboffchip_affine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip_affine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
