# Empty compiler generated dependencies file for offchip_affine.
# This may be replaced when dependencies are built.
