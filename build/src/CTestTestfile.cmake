# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("linalg")
subdirs("affine")
subdirs("core")
subdirs("noc")
subdirs("dram")
subdirs("vm")
subdirs("cache")
subdirs("sim")
subdirs("workloads")
subdirs("harness")
