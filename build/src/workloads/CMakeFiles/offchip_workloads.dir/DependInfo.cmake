
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/AppModel.cpp" "src/workloads/CMakeFiles/offchip_workloads.dir/AppModel.cpp.o" "gcc" "src/workloads/CMakeFiles/offchip_workloads.dir/AppModel.cpp.o.d"
  "/root/repo/src/workloads/Apps.cpp" "src/workloads/CMakeFiles/offchip_workloads.dir/Apps.cpp.o" "gcc" "src/workloads/CMakeFiles/offchip_workloads.dir/Apps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/affine/CMakeFiles/offchip_affine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/offchip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/offchip_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/offchip_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/offchip_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
