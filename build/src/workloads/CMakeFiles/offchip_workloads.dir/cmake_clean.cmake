file(REMOVE_RECURSE
  "CMakeFiles/offchip_workloads.dir/AppModel.cpp.o"
  "CMakeFiles/offchip_workloads.dir/AppModel.cpp.o.d"
  "CMakeFiles/offchip_workloads.dir/Apps.cpp.o"
  "CMakeFiles/offchip_workloads.dir/Apps.cpp.o.d"
  "liboffchip_workloads.a"
  "liboffchip_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
