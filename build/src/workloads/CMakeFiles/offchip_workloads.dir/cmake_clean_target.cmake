file(REMOVE_RECURSE
  "liboffchip_workloads.a"
)
