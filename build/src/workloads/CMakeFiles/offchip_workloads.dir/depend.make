# Empty dependencies file for offchip_workloads.
# This may be replaced when dependencies are built.
