file(REMOVE_RECURSE
  "liboffchip_dram.a"
)
