# Empty compiler generated dependencies file for offchip_dram.
# This may be replaced when dependencies are built.
