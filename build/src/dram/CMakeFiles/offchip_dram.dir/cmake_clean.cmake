file(REMOVE_RECURSE
  "CMakeFiles/offchip_dram.dir/MemoryController.cpp.o"
  "CMakeFiles/offchip_dram.dir/MemoryController.cpp.o.d"
  "liboffchip_dram.a"
  "liboffchip_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
