file(REMOVE_RECURSE
  "CMakeFiles/offchip_vm.dir/VirtualMemory.cpp.o"
  "CMakeFiles/offchip_vm.dir/VirtualMemory.cpp.o.d"
  "liboffchip_vm.a"
  "liboffchip_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
