file(REMOVE_RECURSE
  "liboffchip_vm.a"
)
