# Empty compiler generated dependencies file for offchip_vm.
# This may be replaced when dependencies are built.
