file(REMOVE_RECURSE
  "liboffchip_harness.a"
)
