# Empty dependencies file for offchip_harness.
# This may be replaced when dependencies are built.
