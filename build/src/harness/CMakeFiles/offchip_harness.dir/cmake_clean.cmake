file(REMOVE_RECURSE
  "CMakeFiles/offchip_harness.dir/Experiment.cpp.o"
  "CMakeFiles/offchip_harness.dir/Experiment.cpp.o.d"
  "liboffchip_harness.a"
  "liboffchip_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
