file(REMOVE_RECURSE
  "CMakeFiles/offchip_cache.dir/Cache.cpp.o"
  "CMakeFiles/offchip_cache.dir/Cache.cpp.o.d"
  "CMakeFiles/offchip_cache.dir/Directory.cpp.o"
  "CMakeFiles/offchip_cache.dir/Directory.cpp.o.d"
  "liboffchip_cache.a"
  "liboffchip_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
