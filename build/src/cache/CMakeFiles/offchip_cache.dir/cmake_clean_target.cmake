file(REMOVE_RECURSE
  "liboffchip_cache.a"
)
