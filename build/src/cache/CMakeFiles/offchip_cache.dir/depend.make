# Empty dependencies file for offchip_cache.
# This may be replaced when dependencies are built.
