
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/AddressMap.cpp" "src/sim/CMakeFiles/offchip_sim.dir/AddressMap.cpp.o" "gcc" "src/sim/CMakeFiles/offchip_sim.dir/AddressMap.cpp.o.d"
  "/root/repo/src/sim/Engine.cpp" "src/sim/CMakeFiles/offchip_sim.dir/Engine.cpp.o" "gcc" "src/sim/CMakeFiles/offchip_sim.dir/Engine.cpp.o.d"
  "/root/repo/src/sim/Machine.cpp" "src/sim/CMakeFiles/offchip_sim.dir/Machine.cpp.o" "gcc" "src/sim/CMakeFiles/offchip_sim.dir/Machine.cpp.o.d"
  "/root/repo/src/sim/MachineConfig.cpp" "src/sim/CMakeFiles/offchip_sim.dir/MachineConfig.cpp.o" "gcc" "src/sim/CMakeFiles/offchip_sim.dir/MachineConfig.cpp.o.d"
  "/root/repo/src/sim/Metrics.cpp" "src/sim/CMakeFiles/offchip_sim.dir/Metrics.cpp.o" "gcc" "src/sim/CMakeFiles/offchip_sim.dir/Metrics.cpp.o.d"
  "/root/repo/src/sim/Report.cpp" "src/sim/CMakeFiles/offchip_sim.dir/Report.cpp.o" "gcc" "src/sim/CMakeFiles/offchip_sim.dir/Report.cpp.o.d"
  "/root/repo/src/sim/ThreadStream.cpp" "src/sim/CMakeFiles/offchip_sim.dir/ThreadStream.cpp.o" "gcc" "src/sim/CMakeFiles/offchip_sim.dir/ThreadStream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/offchip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/offchip_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/offchip_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/offchip_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/offchip_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/affine/CMakeFiles/offchip_affine.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/offchip_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/offchip_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
