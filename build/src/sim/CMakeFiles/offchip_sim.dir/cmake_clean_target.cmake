file(REMOVE_RECURSE
  "liboffchip_sim.a"
)
