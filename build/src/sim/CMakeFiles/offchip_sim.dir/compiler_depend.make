# Empty compiler generated dependencies file for offchip_sim.
# This may be replaced when dependencies are built.
