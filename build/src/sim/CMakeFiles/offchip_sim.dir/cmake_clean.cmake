file(REMOVE_RECURSE
  "CMakeFiles/offchip_sim.dir/AddressMap.cpp.o"
  "CMakeFiles/offchip_sim.dir/AddressMap.cpp.o.d"
  "CMakeFiles/offchip_sim.dir/Engine.cpp.o"
  "CMakeFiles/offchip_sim.dir/Engine.cpp.o.d"
  "CMakeFiles/offchip_sim.dir/Machine.cpp.o"
  "CMakeFiles/offchip_sim.dir/Machine.cpp.o.d"
  "CMakeFiles/offchip_sim.dir/MachineConfig.cpp.o"
  "CMakeFiles/offchip_sim.dir/MachineConfig.cpp.o.d"
  "CMakeFiles/offchip_sim.dir/Metrics.cpp.o"
  "CMakeFiles/offchip_sim.dir/Metrics.cpp.o.d"
  "CMakeFiles/offchip_sim.dir/Report.cpp.o"
  "CMakeFiles/offchip_sim.dir/Report.cpp.o.d"
  "CMakeFiles/offchip_sim.dir/ThreadStream.cpp.o"
  "CMakeFiles/offchip_sim.dir/ThreadStream.cpp.o.d"
  "liboffchip_sim.a"
  "liboffchip_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
