# Empty dependencies file for offchip_noc.
# This may be replaced when dependencies are built.
