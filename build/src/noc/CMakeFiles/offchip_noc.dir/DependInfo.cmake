
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/Mesh.cpp" "src/noc/CMakeFiles/offchip_noc.dir/Mesh.cpp.o" "gcc" "src/noc/CMakeFiles/offchip_noc.dir/Mesh.cpp.o.d"
  "/root/repo/src/noc/Network.cpp" "src/noc/CMakeFiles/offchip_noc.dir/Network.cpp.o" "gcc" "src/noc/CMakeFiles/offchip_noc.dir/Network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/offchip_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
