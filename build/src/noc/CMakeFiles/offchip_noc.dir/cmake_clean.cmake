file(REMOVE_RECURSE
  "CMakeFiles/offchip_noc.dir/Mesh.cpp.o"
  "CMakeFiles/offchip_noc.dir/Mesh.cpp.o.d"
  "CMakeFiles/offchip_noc.dir/Network.cpp.o"
  "CMakeFiles/offchip_noc.dir/Network.cpp.o.d"
  "liboffchip_noc.a"
  "liboffchip_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
