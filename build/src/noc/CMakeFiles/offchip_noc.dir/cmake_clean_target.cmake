file(REMOVE_RECURSE
  "liboffchip_noc.a"
)
