# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_demo_runs "/root/repo/build/tools/offchip-opt" "--demo" "--emit-code")
set_tests_properties(tool_demo_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rejects_bad_args "/root/repo/build/tools/offchip-opt" "--no-such-flag")
set_tests_properties(tool_rejects_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_parses_spmv "/root/repo/build/tools/offchip-opt" "/root/repo/examples/programs/spmv.txt" "--emit-code")
set_tests_properties(tool_parses_spmv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_parses_stencil "/root/repo/build/tools/offchip-opt" "/root/repo/examples/programs/stencil27.txt")
set_tests_properties(tool_parses_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
