file(REMOVE_RECURSE
  "CMakeFiles/offchip-opt.dir/offchip-opt/main.cpp.o"
  "CMakeFiles/offchip-opt.dir/offchip-opt/main.cpp.o.d"
  "offchip-opt"
  "offchip-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
