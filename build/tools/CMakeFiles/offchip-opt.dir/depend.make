# Empty dependencies file for offchip-opt.
# This may be replaced when dependencies are built.
